"""Bounded priority admission queues with early shedding and coalescing.

The :class:`AdmissionController` is the only buffer between clients and the
dispatcher, and it is deliberately small: when offered load exceeds serving
capacity the queue fills and new work is **rejected immediately** (load
shedding) instead of queueing unboundedly.  That single decision is what
keeps the latency of admitted requests flat under overload -- a request
that gets in waits behind at most ``capacity`` others, so queueing delay is
bounded by construction, and the excess offered load bounces with a cheap
structured :class:`~repro.server.errors.Overloaded` response instead of
timing out after a long blind wait.

Two refinements on the plain bounded queue:

* **Priority classes** -- one FIFO per priority (0 highest).  The
  dispatcher always drains the highest non-empty class, and when the queue
  is full a strictly-higher-priority arrival evicts (sheds) the newest
  lowest-priority entry rather than being turned away, so background
  tenants cannot starve interactive ones.
* **Coalescing** -- queued entries carrying the same non-``None``
  ``coalesce_key`` (same-graph BFS point queries) are dequeued *together*,
  up to the MS-BFS lane width, so one lane-packed sweep answers the whole
  group (see :meth:`~repro.service.TraversalService.submit`).  Under
  overload this is the second survival lever: the deeper the backlog of
  same-graph point queries, the more of them each decode pass retires.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable


class AdmissionController:
    """Bounded priority queues feeding the dispatcher.

    Entries are opaque beyond two attributes: ``priority`` (int, 0
    highest) chooses the FIFO class, and ``coalesce_key`` (hashable or
    ``None``) marks batchable work.

    Args:
        capacity: total queued entries across every priority class.
        coalesce_width: maximum entries dequeued together per shared key
            (the MS-BFS lane width, for BFS coalescing).
    """

    def __init__(self, capacity: int = 64, coalesce_width: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be > 0, got {capacity}")
        if coalesce_width <= 0:
            raise ValueError(
                f"coalesce width must be > 0, got {coalesce_width}"
            )
        self.capacity = capacity
        self.coalesce_width = coalesce_width
        self._queues: dict[int, list[Any]] = {}
        self._depth = 0
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False

    # -- producer side ---------------------------------------------------------

    def offer(self, entry: Any) -> tuple[bool, Any | None]:
        """Try to enqueue ``entry``; never blocks.

        Returns ``(admitted, evicted)``: ``admitted`` is ``False`` when the
        controller is full (the caller sheds the entry) or closed;
        ``evicted`` is a previously queued lower-priority entry displaced
        to make room (the caller sheds *that* one), else ``None``.
        """
        with self._lock:
            if self._closed:
                return False, None
            evicted = None
            if self._depth >= self.capacity:
                evicted = self._evict_below(entry.priority)
                if evicted is None:
                    return False, None
            self._queues.setdefault(entry.priority, []).append(entry)
            self._depth += 1
            self._ready.notify()
            return True, evicted

    def _evict_below(self, priority: int) -> Any | None:
        """Displace the newest entry of the lowest class below ``priority``."""
        for level in sorted(self._queues, reverse=True):
            if level <= priority:
                return None
            queue = self._queues[level]
            if queue:
                self._depth -= 1
                return queue.pop()
        return None

    # -- consumer side ---------------------------------------------------------

    def take(self, timeout: float | None = None) -> list[Any]:
        """Dequeue the next dispatch group, blocking up to ``timeout``.

        Returns the highest-priority oldest entry plus -- when it carries a
        ``coalesce_key`` -- every queued entry sharing that key (priority
        order, FIFO within class), up to ``coalesce_width`` entries total.
        Returns ``[]`` on timeout or once closed and drained.
        """
        with self._lock:
            while self._depth == 0:
                if self._closed:
                    return []
                if not self._ready.wait(timeout=timeout):
                    return []
            head = self._pop_head()
            group = [head]
            key = getattr(head, "coalesce_key", None)
            if key is not None:
                group.extend(self._extract_key(key, self.coalesce_width - 1))
            return group

    def _pop_head(self) -> Any:
        """Remove and return the oldest entry of the highest busy class."""
        for level in sorted(self._queues):
            queue = self._queues[level]
            if queue:
                self._depth -= 1
                return queue.pop(0)
        raise RuntimeError("take() called with an empty controller")

    def _extract_key(self, key: Any, limit: int) -> list[Any]:
        """Remove up to ``limit`` queued entries sharing ``coalesce_key``."""
        matched: list[Any] = []
        for level in sorted(self._queues):
            if len(matched) >= limit:
                break
            queue = self._queues[level]
            kept: list[Any] = []
            for entry in queue:
                if (
                    len(matched) < limit
                    and getattr(entry, "coalesce_key", None) == key
                ):
                    matched.append(entry)
                    self._depth -= 1
                else:
                    kept.append(entry)
            self._queues[level] = kept
        return matched

    # -- introspection / lifecycle --------------------------------------------

    def depth(self) -> int:
        """Entries currently queued across every priority class."""
        with self._lock:
            return self._depth

    def close(self) -> None:
        """Refuse further offers and wake blocked consumers."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def drain(self) -> Iterable[Any]:
        """Remove and return every queued entry (for shutdown rejection)."""
        with self._lock:
            drained = [
                entry
                for level in sorted(self._queues)
                for entry in self._queues[level]
            ]
            self._queues.clear()
            self._depth = 0
            return drained


__all__ = ["AdmissionController"]
