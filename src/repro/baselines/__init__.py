"""Baseline traversal systems the paper compares GCGT against.

* :mod:`cpu` -- the single-threaded Naive baseline and the Ligra / Ligra+
  style multi-core frontier engines (the latter on byte-compressed CSR);
* :mod:`gpucsr` -- the GPU-CSR standalone engine (Merrill-style BFS, also
  serving Soman-style CC and Sriram-style BC) on uncompressed CSR;
* :mod:`gunrock_like` -- a Gunrock-like framework layer over the GPU-CSR
  engine that models the extra device-memory footprint responsible for the
  out-of-memory failures in Figure 8.

All engines expose the same ``expand(frontier, filter_fn)`` interface as
:class:`repro.traversal.gcgt.GCGTEngine`, so the applications in
:mod:`repro.apps` run unmodified on every one of them.
"""

from repro.baselines.cpu import CPUCostModel, LigraEngine, LigraPlusEngine, NaiveCPUEngine
from repro.baselines.gpucsr import GPUCSREngine
from repro.baselines.gunrock_like import GunrockLikeEngine

__all__ = [
    "CPUCostModel",
    "NaiveCPUEngine",
    "LigraEngine",
    "LigraPlusEngine",
    "GPUCSREngine",
    "GunrockLikeEngine",
]
