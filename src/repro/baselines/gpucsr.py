"""GPU-CSR baseline: frontier traversal over uncompressed CSR on the simulator.

This models the paper's ``GPUCSR`` bars -- the standalone state-of-the-art
implementations on the traditional CSR format (Merrill et al. for BFS, Soman
et al. for CC, Sriram et al. for BC).  Because the neighbours of a frontier
node are directly addressable in the column-index array, the warp can balance
its work perfectly: all neighbours of a frontier chunk are gathered and
handled in warp-width slices with fully coalesced reads.  Its cost is the
yard-stick GCGT's decoding overhead is measured against (Figure 8), and its
memory footprint is the full 32 bits per edge that CGR undercuts.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.gpu.device import GPUDevice
from repro.gpu.metrics import KernelMetrics
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.traversal.frontier import FrontierQueue


class GPUCSREngine:
    """Warp-balanced frontier expansion over uncompressed CSR."""

    name = "GPUCSR"

    def __init__(self, csr: CSRGraph, device: GPUDevice | None = None) -> None:
        self.csr = csr
        self.device = device or GPUDevice()
        self.device.check_fits(csr.size_in_bytes(), what="CSR graph")
        self.metrics = KernelMetrics()

    @classmethod
    def from_graph(cls, graph: Graph, device: GPUDevice | None = None) -> "GPUCSREngine":
        """Build the engine from an uncompressed graph (CSR conversion included)."""
        return cls(CSRGraph.from_graph(graph), device=device)

    # -- graph facts -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the resident CSR graph."""
        return self.csr.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges."""
        return self.csr.num_edges

    @property
    def compression_rate(self) -> float:
        """CSR is the 32-bit-per-edge reference: rate 1.0."""
        return 1.0

    def reset_metrics(self) -> None:
        """Discard accumulated kernel metrics (fresh measurement window)."""
        self.metrics = KernelMetrics()

    # -- traversal ------------------------------------------------------------------

    def expand(
        self, frontier: Sequence[int], filter_fn: Callable[[int, int], bool]
    ) -> list[int]:
        """One expansion iteration with Merrill-style balanced gathering."""
        iteration = self.device.new_metrics()
        warp = self.device.new_warp(iteration)
        out_queue = FrontierQueue()
        warp_size = self.device.warp_size

        for begin in range(0, len(frontier), warp_size):
            chunk = list(frontier[begin:begin + warp_size])
            # Load the frontier entries and each node's row offsets.
            warp.step(active_lanes=len(chunk))
            warp.memory.access_words(
                range(begin, begin + len(chunk)), space="frontier_queue"
            )
            warp.memory.access_words(
                (int(node) for node in chunk), space="csr_indptr"
            )

            # Gather all neighbours of the chunk.  Column indices of one node
            # are contiguous, so the reads coalesce per node.
            gathered: list[tuple[int, int]] = []
            for node in chunk:
                start = int(self.csr.indptr[node])
                end = int(self.csr.indptr[node + 1])
                warp.memory.access_words(range(start, end), space="csr_indices")
                gathered.extend((node, int(v)) for v in self.csr.indices[start:end])

            # Perfectly balanced cooperative processing: one gather round and
            # one handle round per warp-width slice of neighbours.
            for slice_begin in range(0, len(gathered), warp_size):
                pairs = gathered[slice_begin:slice_begin + warp_size]
                warp.step(active_lanes=len(pairs))  # gather/scatter round
                warp.step(active_lanes=len(pairs))  # status-check round
                warp.memory.access_words(
                    (neighbor for _, neighbor in pairs), space="labels"
                )
                warp.memory.shared_access(len(pairs))
                appended = 0
                for node, neighbor in pairs:
                    if filter_fn(node, neighbor):
                        out_queue.append(neighbor)
                        appended += 1
                if appended:
                    warp.memory.atomic_add(1)
                    base = len(out_queue.pending) - appended
                    warp.memory.access_words(
                        range(base, base + appended), space="out_queue"
                    )

        iteration.launches += 1
        self.metrics.merge(iteration)
        return out_queue.pending

    # -- cost ---------------------------------------------------------------------------

    def cost(self) -> float:
        """Simulated total-work cost of the accumulated kernel metrics."""
        return self.device.cost(self.metrics)

    def elapsed_proxy(self) -> float:
        """Accumulated cost divided by the device's warp-level parallelism."""
        return self.device.elapsed_proxy(self.metrics)
