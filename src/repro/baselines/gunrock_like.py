"""Gunrock-like framework baseline.

Gunrock is a general graph-analytics framework: its programmability comes at
the price of extra device-memory structures (double-buffered frontiers sized
for the worst case, per-node/per-edge operator metadata) and extra kernel
launches per iteration.  In the paper this shows up twice: Gunrock runs out of
the 12 GB device memory on uk-2007 and twitter (Figure 8), and it is somewhat
slower than the hand-tuned GPU-CSR implementations on the rest.

The engine wraps :class:`~repro.baselines.gpucsr.GPUCSREngine` for the actual
traversal, scales the footprint by a framework overhead factor for the
out-of-memory check, and adds a per-iteration kernel-launch surcharge to the
cost counters.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.gpucsr import GPUCSREngine
from repro.gpu.device import GPUDevice
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph

#: Device-memory multiplier of the framework relative to bare CSR: frontier
#: double-buffers sized in edges plus per-node operator state.
FRAMEWORK_MEMORY_OVERHEAD = 3.0
#: Extra instruction rounds charged per expand call (additional kernel
#: launches and frontier-management passes of the framework).
FRAMEWORK_LAUNCH_OVERHEAD_ROUNDS = 64


class GunrockLikeEngine:
    """A general-framework baseline with memory and launch overheads."""

    name = "Gunrock"

    def __init__(self, csr: CSRGraph, device: GPUDevice | None = None) -> None:
        self.device = device or GPUDevice()
        required = int(csr.size_in_bytes() * FRAMEWORK_MEMORY_OVERHEAD)
        self.device.check_fits(required, what="Gunrock framework structures")
        self._inner = GPUCSREngine(csr, device=self.device)

    @classmethod
    def from_graph(cls, graph: Graph, device: GPUDevice | None = None) -> "GunrockLikeEngine":
        """Build the engine from an uncompressed graph (CSR conversion included)."""
        return cls(CSRGraph.from_graph(graph), device=device)

    # -- delegation --------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the resident CSR graph."""
        return self._inner.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges."""
        return self._inner.num_edges

    @property
    def compression_rate(self) -> float:
        """CSR is the 32-bit-per-edge reference: rate 1.0."""
        return 1.0

    @property
    def metrics(self):
        """The inner CSR engine's accumulated kernel metrics."""
        return self._inner.metrics

    def reset_metrics(self) -> None:
        """Discard accumulated kernel metrics (fresh measurement window)."""
        self._inner.reset_metrics()

    def expand(
        self, frontier: Sequence[int], filter_fn: Callable[[int, int], bool]
    ) -> list[int]:
        """One frontier expansion, with the framework's launch overhead charged."""
        result = self._inner.expand(frontier, filter_fn)
        # Framework overhead: extra kernel launches and frontier compaction.
        self._inner.metrics.instruction_rounds += FRAMEWORK_LAUNCH_OVERHEAD_ROUNDS
        self._inner.metrics.memory_transactions += max(1, len(frontier) // 8)
        return result

    def cost(self) -> float:
        """Simulated total-work cost of the accumulated kernel metrics."""
        return self._inner.cost()

    def elapsed_proxy(self) -> float:
        """Accumulated cost divided by the device's warp-level parallelism."""
        return self._inner.elapsed_proxy()
