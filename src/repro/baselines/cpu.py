"""CPU baselines: Naive, Ligra-style and Ligra+-style frontier engines.

The paper's CPU reference points are a single-threaded BFS (``Naive``), the
Ligra shared-memory framework (36 hardware threads in their setup) and Ligra+,
which runs the same traversal over byte-compressed adjacency lists.  The
engines here execute the real traversal (so results are exact) and accumulate
an abstract work count; the elapsed-time proxy divides that work by the
engine's thread count and adds a per-iteration synchronisation charge, which
is what makes the CPU bars sit well above the GPU bars in Figure 8, as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.compression.byte_rle import ByteRLEGraph
from repro.graph.graph import Graph


@dataclass(frozen=True)
class CPUCostModel:
    """Weights of the CPU work counters."""

    #: Cost of touching one edge (read the neighbour id, run the filter).
    edge_op_cost: float = 1.0
    #: Cost of one random memory access (label array lookup).
    memory_cost: float = 2.0
    #: Extra per-edge cost of decoding a byte-compressed neighbour (Ligra+).
    decode_cost: float = 0.4
    #: Per-iteration barrier/synchronisation cost for parallel engines.
    sync_cost: float = 200.0


@dataclass
class CPUMetrics:
    """Work counters accumulated by a CPU engine."""

    edge_ops: int = 0
    memory_ops: int = 0
    decode_ops: int = 0
    iterations: int = 0

    def merge(self, other: "CPUMetrics") -> None:
        """Fold another metrics record into this one."""
        self.edge_ops += other.edge_ops
        self.memory_ops += other.memory_ops
        self.decode_ops += other.decode_ops
        self.iterations += other.iterations


class _CPUFrontierEngine:
    """Shared machinery of the CPU engines (they differ in cost, not results)."""

    def __init__(self, graph: Graph, num_threads: int, cost_model: CPUCostModel) -> None:
        self._graph = graph
        self.num_threads = num_threads
        self.cost_model = cost_model
        self.metrics = CPUMetrics()

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def compression_rate(self) -> float:
        """Uncompressed CSR: 32 bits per edge, rate 1.0 by definition."""
        return 1.0

    def reset_metrics(self) -> None:
        self.metrics = CPUMetrics()

    # -- traversal ---------------------------------------------------------------

    def _neighbors(self, node: int) -> Sequence[int]:
        return self._graph.neighbors(node)

    def _per_edge_decode_ops(self) -> int:
        return 0

    def expand(
        self, frontier: Sequence[int], filter_fn: Callable[[int, int], bool]
    ) -> list[int]:
        """One frontier iteration; identical semantics to the GPU engines."""
        next_frontier: list[int] = []
        decode_per_edge = self._per_edge_decode_ops()
        for node in frontier:
            neighbors = self._neighbors(node)
            self.metrics.edge_ops += len(neighbors)
            self.metrics.memory_ops += len(neighbors) + 1
            self.metrics.decode_ops += decode_per_edge * len(neighbors)
            for neighbor in neighbors:
                if filter_fn(node, neighbor):
                    next_frontier.append(neighbor)
        self.metrics.iterations += 1
        return next_frontier

    # -- elapsed-time proxy ----------------------------------------------------------

    def cost(self) -> float:
        """Total work under the cost model (thread-count independent)."""
        model = self.cost_model
        return (
            model.edge_op_cost * self.metrics.edge_ops
            + model.memory_cost * self.metrics.memory_ops
            + model.decode_cost * self.metrics.decode_ops
        )

    def elapsed_proxy(self) -> float:
        """Work divided by parallelism plus synchronisation overhead."""
        return (
            self.cost() / max(1, self.num_threads)
            + self.cost_model.sync_cost * self.metrics.iterations
        )


class NaiveCPUEngine(_CPUFrontierEngine):
    """Single-threaded reference implementation (the paper's ``Naive``)."""

    name = "Naive"

    def __init__(self, graph: Graph, cost_model: CPUCostModel | None = None) -> None:
        super().__init__(graph, num_threads=1, cost_model=cost_model or CPUCostModel())


class LigraEngine(_CPUFrontierEngine):
    """Ligra-style multi-core frontier engine on uncompressed adjacency lists."""

    name = "Ligra"

    def __init__(
        self,
        graph: Graph,
        num_threads: int = 36,
        cost_model: CPUCostModel | None = None,
    ) -> None:
        super().__init__(graph, num_threads=num_threads, cost_model=cost_model or CPUCostModel())


class LigraPlusEngine(_CPUFrontierEngine):
    """Ligra+-style engine: the same traversal over byte-compressed lists."""

    name = "Ligra+"

    def __init__(
        self,
        graph: Graph,
        num_threads: int = 36,
        cost_model: CPUCostModel | None = None,
    ) -> None:
        super().__init__(graph, num_threads=num_threads, cost_model=cost_model or CPUCostModel())
        self._compressed = ByteRLEGraph.from_adjacency(graph.adjacency())

    @property
    def compression_rate(self) -> float:
        """Compression rate of the byte-RLE adjacency actually traversed."""
        return self._compressed.compression_rate

    def _neighbors(self, node: int) -> Sequence[int]:
        # Decode from the byte-compressed representation so the traversal
        # genuinely exercises the compressed data path.
        return self._compressed.neighbors(node)

    def _per_edge_decode_ops(self) -> int:
        return 1
