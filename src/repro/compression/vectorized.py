"""Vectorized whole-graph CGR decode: the paper's parallel decode on numpy.

The paper's GPU kernels hide the inherent serialism of VLC streams by
decoding *many* streams at once -- one warp per node, one lane per segment.
This module is the CPU realization of the same idea: instead of walking one
node's codes with Python-level loops, it advances **every node's stream by
one code per numpy round**:

* the unary prefix of all active streams is found in one vectorized
  ``searchsorted`` against the precomputed positions of the stream's one
  bits (``np.flatnonzero`` over ``np.unpackbits`` output -- the bulk
  byte-to-bit conversion the packed engine already uses);
* all payloads are fetched in one gather: an 8-byte window per code, folded
  into a ``uint64`` and shifted/masked per element;
* residual gaps are turned back into absolute node ids with one segmented
  ``cumsum`` over all runs at once (the zig-zag of each run's first gap is
  applied with a vectorized ``where``).

Residual segments decode as *independent* streams exactly as Section 5.2
intends, so a graph with ``s`` segments keeps ``s`` lanes busy per round.
The output is bit-identical to :meth:`CGRGraph.neighbors` -- the property
and differential suites assert exact equality -- only the throughput
changes, which is what ``benchmarks/test_decode_throughput.py`` gates.

Scope: gamma and zeta_k streams (the paper's configurations) over plain
:class:`~repro.compression.cgr.CGRGraph` objects.  Everything else (delta
codes, overlay views) raises :class:`VectorizedDecodeUnsupported` and the
caller falls back to the scalar stream decoders.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

#: Widest payload the vectorized extractor handles per element (an 8-byte
#: window minus up to 7 bits of in-byte offset).  Wider codes -- absent from
#: realistic graphs -- are fixed up per element through the packed reader.
_MAX_VECTOR_WIDTH = 56

#: Below this many active streams a SIMD round costs more than scalar
#: decoding, so :meth:`_Decoder._decode_runs` hands the stragglers to the
#: scalar window decoder.
_SCALAR_TAIL = 48


def _zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.compression.gaps.zigzag_decode`."""
    return np.where(values & 1 == 0, values >> 1, -((values + 1) >> 1))


class VectorizedDecodeUnsupported(ValueError):
    """The graph's configuration has no vectorized decode path."""


def supports(graph) -> bool:
    """Whether :func:`decode_adjacency` can decode ``graph``."""
    scheme_name = getattr(graph.config, "vlc_scheme", None)
    if scheme_name != "gamma" and not (
        isinstance(scheme_name, str) and scheme_name.startswith("zeta")
    ):
        return False
    bits = getattr(graph, "bits", None)
    return hasattr(bits, "to_bytes") and hasattr(graph, "offsets")


def decode_adjacency(graph) -> list[list[int]]:
    """Decode every node's sorted adjacency list in vectorized rounds.

    Exactly equivalent to ``[graph.neighbors(v) for v in range(n)]``.
    Raises :class:`VectorizedDecodeUnsupported` for configurations without a
    vectorized path.
    """
    return _Decoder(graph).decode()


class _Decoder:
    """One whole-graph decode pass (transient; holds the unpacked stream)."""

    def __init__(self, graph) -> None:
        if not supports(graph):
            raise VectorizedDecodeUnsupported(
                f"no vectorized decode for scheme "
                f"{getattr(graph.config, 'vlc_scheme', None)!r} on "
                f"{type(graph).__name__}"
            )
        self._graph = graph
        scheme_name = graph.config.vlc_scheme
        self._gamma = scheme_name == "gamma"
        self._k = 0 if self._gamma else int(scheme_name[4:])
        self._length = len(graph.bits)
        payload = graph.bits.to_bytes()
        data = np.frombuffer(payload + b"\x00" * 16, dtype=np.uint8)
        # One whole-stream fold up front: ``_folded[b]`` is the big-endian
        # 64-bit word starting at byte ``b``, so every later payload gather
        # is a single fancy index plus shift/mask.
        window_count = len(data) - 7
        folded = sliding_window_view(data, 8)[:, 0].astype(np.uint64).copy()
        for column in range(1, 8):
            folded = (folded << np.uint64(8)) | data[column : column + window_count]
        self._folded = folded
        unpacked = np.unpackbits(data[: len(payload)])[: self._length]
        # Next-one table: ``_next_one[p]`` is the absolute position of the
        # first 1 bit at or after ``p`` (the unary-scan primitive), built
        # with one reverse minimum-accumulate so each round's scan is a
        # single gather instead of a binary search.
        index = np.arange(self._length + 1, dtype=np.int32)
        index[:-1][unpacked == 0] = self._length
        self._next_one = np.minimum.accumulate(index[::-1])[::-1]

    # -- one code per active stream per round ---------------------------------

    def _round(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decode one code at each of ``positions``; return (values, ends)."""
        terminators = self._next_one[positions]
        if terminators.size and int(terminators.max(initial=0)) >= self._length:
            raise EOFError("bit stream exhausted")
        zeros = terminators - positions
        if self._gamma:
            widths = zeros
        else:
            widths = (zeros + 1) * self._k
        starts = terminators + 1
        ends = starts + widths
        if ends.size and int(ends.max(initial=0)) > self._length:
            raise EOFError("bit stream exhausted")
        if widths.size and int(widths.max(initial=0)) > 62:
            raise VectorizedDecodeUnsupported(
                "code payload wider than 62 bits"
            )
        wide = widths > _MAX_VECTOR_WIDTH
        safe_widths = np.where(wide, 0, widths)
        values = self._extract(starts, safe_widths)
        if self._gamma:
            values = values | np.left_shift(
                np.int64(1), safe_widths.astype(np.int64)
            )
        if wide.any():
            extract = self._graph.bits.extract
            for index in np.flatnonzero(wide):
                width = int(widths[index])
                value = extract(int(starts[index]), width)
                if self._gamma:
                    value |= 1 << width
                values[index] = value
        return values, ends

    def _extract(self, starts: np.ndarray, widths: np.ndarray) -> np.ndarray:
        """Vectorized MSB-first field gather for widths <= 56 bits."""
        word = self._folded[starts >> 3]
        u_widths = widths.astype(np.uint64)
        shifts = np.minimum(
            np.uint64(64) - (starts & 7).astype(np.uint64) - u_widths,
            np.uint64(63),
        )
        masks = (np.uint64(1) << u_widths) - np.uint64(1)
        return ((word >> shifts) & masks).astype(np.int64)

    def _decode_runs(
        self, positions: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode ``counts[i]`` consecutive codes starting at ``positions[i]``.

        All streams advance together, one code per round (streams that
        finish drop out of the frontier).  Once the frontier shrinks below
        :data:`_SCALAR_TAIL` streams the SIMD rounds stop paying for
        themselves, so the stragglers (a hub's long run) are finished with
        the scalar window decoder, one bulk run each.  Returns the decoded
        raw values concatenated stream-major (stream 0's codes in order,
        then stream 1's, ...) and each stream's final end position.
        """
        counts = counts.astype(np.int64)
        final_ends = positions.astype(np.int64).copy()
        total = int(counts.sum())
        out = np.empty(total, np.int64)
        # Each stream writes into its own contiguous slot range, so the
        # stream-major order falls out of the writes -- no sort needed.
        slots = np.cumsum(counts) - counts
        active = np.flatnonzero(counts > 0)
        cursor = positions[active].astype(np.int64)
        remaining = counts[active]
        slot = slots[active]
        while active.size > _SCALAR_TAIL:
            values, ends = self._round(cursor)
            out[slot] = values
            slot = slot + 1
            remaining = remaining - 1
            done = remaining == 0
            if done.any():
                final_ends[active[done]] = ends[done]
            keep = ~done
            active = active[keep]
            cursor = ends[keep]
            remaining = remaining[keep]
            slot = slot[keep]
        if active.size:
            make_decoder = self._graph.config.scheme.stream_decoder
            source = self._graph.bits
            for stream, start, count, begin in zip(
                active.tolist(), cursor.tolist(),
                remaining.tolist(), slot.tolist(),
            ):
                decoder = make_decoder(source, start)
                out[begin : begin + count] = decoder.run(count)
                final_ends[stream] = decoder.position
        return out, final_ends

    # -- gap postprocessing ---------------------------------------------------

    @staticmethod
    def _runs_to_ids(
        values: np.ndarray, run_nodes: np.ndarray, run_lengths: np.ndarray
    ) -> np.ndarray:
        """Absolute node ids from concatenated raw residual-gap runs.

        One segmented cumulative sum: each run's first value is un-shifted
        and zig-zag decoded against its source node; every follower's id is
        simply ``previous + value`` (the "+1" shift and the "gaps are at
        least 1" offset cancel).
        """
        if values.size == 0:
            return values
        if int(values.min()) < 1:
            raise ValueError("VLC-decoded values are >= 1")
        starts = np.cumsum(run_lengths) - run_lengths
        contrib = values.copy()
        contrib[starts] = run_nodes + _zigzag_decode(values[starts] - 1)
        running = np.cumsum(contrib)
        start_of = np.repeat(starts, run_lengths)
        return running - running[start_of] + contrib[start_of]

    # -- full decode ----------------------------------------------------------

    def decode(self) -> list[list[int]]:
        graph = self._graph
        node_count = int(len(graph.offsets)) - 1
        if node_count <= 0:
            return []
        nodes = np.arange(node_count, dtype=np.int64)
        cursor = np.asarray(graph.offsets[:-1], dtype=np.int64).copy()
        config = graph.config
        min_len = config.min_interval_length
        length_shift = 0 if min_len == float("inf") else int(min_len)
        segmented = config.residual_segment_bits is not None

        if segmented:
            active = nodes
            degrees = None
        else:
            raw_deg, ends = self._round(cursor)
            degrees = raw_deg - 1
            if int(degrees.min(initial=0)) < 0:
                raise ValueError("VLC-decoded values are >= 1")
            active = np.flatnonzero(degrees > 0)
            cursor[active] = ends[active]

        # Interval headers: itvNum for every live node, then 2*itvNum codes.
        itv_raw, ends = self._round(cursor[active])
        itv_counts = np.zeros(node_count, np.int64)
        itv_counts[active] = itv_raw - 1
        if int(itv_counts.min(initial=0)) < 0:
            raise ValueError("VLC-decoded values are >= 1")
        cursor[active] = ends
        pair_values, pair_ends = self._decode_runs(
            cursor[active], 2 * itv_counts[active]
        )
        cursor[active] = pair_ends

        # Interval geometry, vectorized: the start-position chain
        # ``start_i = start_{i-1} + length_{i-1} + gap_i`` collapses to one
        # segmented cumsum per node (with the first start zig-zag decoded
        # against the node), mirroring :meth:`_runs_to_ids`.
        gap_raw = pair_values[0::2]
        length_raw = pair_values[1::2]
        if gap_raw.size and (
            int(gap_raw.min()) < 1 or int(length_raw.min()) < 1
        ):
            raise ValueError("VLC-decoded values are >= 1")
        lengths = length_raw - 1 + length_shift
        itv_live = itv_counts[active] > 0
        itv_runs = itv_counts[active][itv_live]
        itv_owner_first = active[itv_live]
        run_starts = np.cumsum(itv_runs) - itv_runs
        contrib = gap_raw - 1
        contrib[1:] += lengths[:-1]
        contrib[run_starts] = itv_owner_first + _zigzag_decode(
            gap_raw[run_starts] - 1
        )
        running = np.cumsum(contrib)
        start_of = np.repeat(run_starts, itv_runs)
        interval_starts = running - running[start_of] + contrib[start_of]
        coverage = np.bincount(
            np.repeat(itv_owner_first, itv_runs),
            weights=lengths,
            minlength=node_count,
        ).astype(np.int64)

        # Residual runs: per segment (segmented) or one per node.
        if segmented:
            seg_raw, ends = self._round(cursor[active])
            seg_counts = seg_raw - 1
            if int(seg_counts.min(initial=0)) < 0:
                raise ValueError("VLC-decoded values are >= 1")
            cursor[active] = ends
            seg_bits = int(config.residual_segment_bits)
            total_segments = int(seg_counts.sum())
            seg_owner = np.repeat(active, seg_counts)
            first_of_owner = np.cumsum(seg_counts) - seg_counts
            seg_index = (
                np.arange(total_segments, dtype=np.int64)
                - np.repeat(first_of_owner, seg_counts)
            )
            seg_positions = np.repeat(cursor[active], seg_counts) + (
                seg_index * seg_bits
            )
            res_raw, res_ends = self._round(seg_positions)
            res_counts = res_raw - 1
            if int(res_counts.min(initial=0)) < 0:
                raise ValueError("VLC-decoded values are >= 1")
            run_positions = res_ends
            run_owner_nodes = seg_owner
        else:
            res_counts = np.maximum(degrees - coverage, 0)[active]
            run_positions = cursor[active]
            run_owner_nodes = active

        live_runs = res_counts > 0
        run_values, _ = self._decode_runs(run_positions, res_counts)
        residual_ids = self._runs_to_ids(
            run_values,
            run_owner_nodes[live_runs],
            res_counts[live_runs],
        )

        # Stitch the final adjacency lists.  A node's residuals are already
        # sorted (runs are increasing and segments partition the sorted
        # residual list in order), so interval-free nodes need no sort.
        per_node_res = np.bincount(
            run_owner_nodes, weights=res_counts, minlength=node_count
        ).astype(np.int64)
        res_bounds = np.cumsum(per_node_res).tolist()
        itv_bounds = np.cumsum(itv_counts).tolist()
        residual_list = residual_ids.tolist()
        starts_list = interval_starts.tolist()
        lengths_list = lengths.tolist()
        result: list[list[int]] = []
        res_begin = 0
        itv_begin = 0
        for node_index in range(node_count):
            res_end = res_bounds[node_index]
            itv_end = itv_bounds[node_index]
            if itv_begin == itv_end:
                result.append(residual_list[res_begin:res_end])
            else:
                merged: list[int] = []
                for index in range(itv_begin, itv_end):
                    start = starts_list[index]
                    merged.extend(range(start, start + lengths_list[index]))
                if res_begin != res_end:
                    merged.extend(residual_list[res_begin:res_end])
                    merged.sort()
                # Intervals are increasing and disjoint, so without
                # residuals the concatenation is already sorted.
                result.append(merged)
            itv_begin = itv_end
            res_begin = res_end
        return result


__all__ = [
    "VectorizedDecodeUnsupported",
    "decode_adjacency",
    "supports",
]
