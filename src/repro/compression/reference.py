"""The seed's bit-granular reader/writer, retained as a differential baseline.

This module preserves the original list-of-bits implementation that
:mod:`repro.compression.bitarray` replaced with the packed-word engine: one
Python ``int`` object per bit, per-bit append/read loops, ``str``-concat
exports.  It exists for two reasons:

* the property suite (``tests/test_bitstream_packed.py``) round-trips random
  bit patterns, arbitrary start offsets and every VLC scheme through the
  packed reader *and* this naive reader and asserts exact equality of decoded
  values and cursor positions -- the packed engine is only allowed to be
  faster, never different;
* the decode-throughput benchmark (``benchmarks/test_decode_throughput.py``)
  measures the packed hot path against this implementation, which is the
  seed's real cost profile, and gates the ≥5x speedup the packed engine must
  deliver.

Nothing in the library's serving path imports this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.compression.gaps import from_vlc_value, zigzag_decode
from repro.compression.intervals import Interval


class NaiveBitWriter:
    """Append-only bit buffer storing one Python int per bit (seed verbatim)."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._bits.append(bit)

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value`` MSB-first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0:
            raise ValueError("value must be non-negative")
        if width == 0:
            if value != 0:
                raise ValueError("non-zero value with zero width")
            return
        if value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_unary(self, count: int, terminator: int = 1) -> None:
        """Append ``count`` copies of the non-terminator bit then a terminator."""
        filler = 1 - terminator
        self._bits.extend([filler] * count)
        self._bits.append(terminator)

    def extend(self, other: "NaiveBitWriter") -> None:
        """Append all bits from another writer."""
        self._bits.extend(other._bits)

    def pad_to(self, bit_length: int, fill: int = 0) -> None:
        """Pad with ``fill`` bits until the buffer is ``bit_length`` long."""
        if bit_length < len(self._bits):
            raise ValueError(
                f"cannot pad to {bit_length}: already {len(self._bits)} bits"
            )
        self._bits.extend([fill] * (bit_length - len(self._bits)))

    def to_bitlist(self) -> list[int]:
        """Return a copy of the bits as a list of 0/1 integers."""
        return list(self._bits)

    def to_bitstring(self) -> str:
        """Return the bits as a string of '0'/'1' characters."""
        return "".join(str(b) for b in self._bits)

    def to_bytes(self) -> bytes:
        """Pack the bits into bytes, zero-padding the final byte."""
        out = bytearray((len(self._bits) + 7) // 8)
        for i, bit in enumerate(self._bits):
            if bit:
                out[i >> 3] |= 0x80 >> (i & 7)
        return bytes(out)


@dataclass
class NaiveBitReader:
    """Per-bit cursor over a list of bits (seed verbatim).

    Exposes the same surface as :class:`repro.compression.bitarray.BitReader`
    so the VLC schemes' serial ``decode`` callables run on it unchanged --
    which is exactly what makes it a usable differential baseline.
    """

    bits: list[int]
    position: int = 0

    @classmethod
    def from_writer(cls, writer: NaiveBitWriter, position: int = 0) -> "NaiveBitReader":
        """Create a reader over the bits accumulated by ``writer``."""
        return cls(writer.to_bitlist(), position)

    @classmethod
    def from_bitstring(cls, text: str, position: int = 0) -> "NaiveBitReader":
        """Create a reader from a string of '0'/'1' characters."""
        return cls([int(c) for c in text if c in "01"], position)

    @classmethod
    def from_bytes(cls, data: bytes, bit_length: int | None = None) -> "NaiveBitReader":
        """Create a reader from packed bytes, one Python loop turn per bit."""
        bits: list[int] = []
        for byte in data:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        if bit_length is not None:
            bits = bits[:bit_length]
        return cls(bits)

    def __len__(self) -> int:
        return len(self.bits)

    @property
    def remaining(self) -> int:
        """Number of bits left after the cursor."""
        return max(0, len(self.bits) - self.position)

    def exhausted(self) -> bool:
        """True when the cursor has reached or passed the end of the stream."""
        return self.position >= len(self.bits)

    def peek_bit(self) -> int:
        """Return the bit under the cursor without advancing."""
        if self.position >= len(self.bits):
            raise EOFError("bit stream exhausted")
        return self.bits[self.position]

    def read_bit(self) -> int:
        """Return the bit under the cursor and advance by one."""
        bit = self.peek_bit()
        self.position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits MSB-first, one loop turn per bit."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self.position + width > len(self.bits):
            raise EOFError(
                f"need {width} bits at position {self.position}, "
                f"only {self.remaining} remain"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self.bits[self.position]
            self.position += 1
        return value

    def read_unary(self, terminator: int = 1) -> int:
        """Read a unary code bit by bit."""
        count = 0
        while True:
            bit = self.read_bit()
            if bit == terminator:
                return count
            count += 1

    def seek(self, position: int) -> None:
        """Move the cursor to an absolute bit offset."""
        if position < 0:
            raise ValueError("position must be non-negative")
        self.position = position

    def fork(self, position: int | None = None) -> "NaiveBitReader":
        """Return an independent reader over the same bits."""
        return NaiveBitReader(
            self.bits, self.position if position is None else position
        )


class NaiveCGRDecoder:
    """The seed's CGR adjacency decoder over a list-of-bits stream.

    Replicates the seed's decode path **structurally as well as bit-wise**:
    like the seed's ``CGRGraph.neighbors``, every per-node decode first
    builds the full :class:`~repro.compression.cgr.NodeLayout` (interval
    objects, residual list, per-segment fork readers) through the schemes'
    serial per-bit ``decode``, then flattens and sorts it.  The
    decode-throughput benchmark times this against the packed graph's hot
    path to measure the end-to-end speedup of the word-level engine on
    identical bits.
    """

    def __init__(self, bits: list[int], offsets: Sequence[int], config) -> None:
        self.bits = bits
        self.offsets = offsets
        self.config = config
        self._scheme = config.scheme

    @classmethod
    def from_graph(cls, graph) -> "NaiveCGRDecoder":
        """Snapshot a :class:`~repro.compression.cgr.CGRGraph`'s stream."""
        return cls(graph.bits.to_bitlist(), graph.offsets, graph.config)

    def layout(self, node: int) -> "NodeLayout":
        """Full structural decode of one node, exactly as the seed did it."""
        from repro.compression.cgr import NodeLayout

        reader = NaiveBitReader(self.bits, int(self.offsets[node]))
        decode = self._scheme.decode
        config = self.config
        min_len = config.min_interval_length
        length_shift = 0 if min_len == float("inf") else int(min_len)
        bit_length = int(self.offsets[node + 1]) - int(self.offsets[node])
        layout = NodeLayout(node=node, degree=0, bit_length=bit_length)

        def decode_intervals() -> None:
            interval_count = from_vlc_value(decode(reader))
            previous_end = node
            for index in range(interval_count):
                gap = from_vlc_value(decode(reader))
                if index == 0:
                    start = node + zigzag_decode(gap)
                else:
                    start = previous_end + gap + 1
                length = from_vlc_value(decode(reader)) + length_shift
                layout.intervals.append(Interval(start=start, length=length))
                previous_end = start + length - 1

        def decode_residual_run(run_reader: NaiveBitReader, count: int) -> None:
            previous: int | None = None
            for index in range(count):
                gap = from_vlc_value(decode(run_reader))
                if index == 0:
                    previous = node + zigzag_decode(gap)
                else:
                    assert previous is not None
                    previous = previous + gap + 1
                layout.residuals.append(previous)

        if config.residual_segment_bits is None:
            degree = from_vlc_value(decode(reader))
            layout.degree = degree
            if degree == 0:
                return layout
            decode_intervals()
            decode_residual_run(reader, degree - layout.interval_coverage)
            return layout

        decode_intervals()
        seg_count = from_vlc_value(decode(reader))
        seg_bits = config.residual_segment_bits
        base = reader.position
        for seg_index in range(seg_count):
            seg_reader = reader.fork(base + seg_index * seg_bits)
            layout.segment_offsets.append(seg_reader.position)
            res_count = from_vlc_value(decode(seg_reader))
            layout.segment_counts.append(res_count)
            decode_residual_run(seg_reader, res_count)
        layout.degree = layout.interval_coverage + len(layout.residuals)
        return layout

    def neighbors(self, node: int) -> list[int]:
        """The node's sorted adjacency list, decoded bit by bit (seed path)."""
        layout = self.layout(node)
        result: list[int] = []
        for interval in layout.intervals:
            result.extend(interval.nodes())
        result.extend(layout.residuals)
        result.sort()
        return result

    def decode_all(self) -> list[list[int]]:
        """Every node's adjacency list (the benchmark's end-to-end workload)."""
        return [self.neighbors(node) for node in range(len(self.offsets) - 1)]


__all__ = [
    "NaiveBitReader",
    "NaiveBitWriter",
    "NaiveCGRDecoder",
]
