"""Graph compression substrate.

This package implements the compressed graph representation (CGR) of the
paper, together with the auxiliary compression techniques it uses as
preprocessing (virtual-node compression) or compares against (byte-RLE as in
Ligra+).

Layers, bottom-up:

``bitarray``
    Bit-granular writer/reader used by every variable-length code.
``vlc``
    Variable-length codes: unary, Elias gamma, Elias delta and zeta_k codes
    (Boldi & Vigna), exactly as described in Appendix B of the paper.
``gaps``
    Gap transformation and the sign/minimum shifting rules of Appendix C.
``intervals``
    Intervals-and-residuals split of a sorted adjacency list.
``cgr``
    The full CGR encoder/decoder for whole graphs, with optional residual
    segmentation (Section 5.2).
``segments``
    Residual segmentation layout helpers.
``virtual_nodes``
    Virtual-node compression (category (i) in the paper's related work),
    used as a preprocessing step before CGR in the evaluation.
``byte_rle``
    Byte-aligned run-length/gap encoding in the spirit of Ligra+, used by the
    Ligra+ baseline.
"""

from repro.compression.bitarray import BitReader, BitWriter
from repro.compression.vlc import (
    VLC_SCHEMES,
    decode_delta,
    decode_gamma,
    decode_unary,
    decode_zeta,
    encode_delta,
    encode_gamma,
    encode_unary,
    encode_zeta,
    get_scheme,
)
from repro.compression.gaps import (
    gap_decode_sequence,
    gap_encode_sequence,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.intervals import (
    IntervalResidualForm,
    merge_intervals_residuals,
    split_intervals_residuals,
)
from repro.compression.cgr import CGRConfig, CGRGraph, encode_graph
from repro.compression.segments import SegmentedResiduals
from repro.compression.virtual_nodes import VirtualNodeCompressor
from repro.compression.byte_rle import ByteRLEGraph

__all__ = [
    "BitReader",
    "BitWriter",
    "VLC_SCHEMES",
    "encode_unary",
    "decode_unary",
    "encode_gamma",
    "decode_gamma",
    "encode_delta",
    "decode_delta",
    "encode_zeta",
    "decode_zeta",
    "get_scheme",
    "zigzag_encode",
    "zigzag_decode",
    "gap_encode_sequence",
    "gap_decode_sequence",
    "IntervalResidualForm",
    "split_intervals_residuals",
    "merge_intervals_residuals",
    "CGRConfig",
    "CGRGraph",
    "encode_graph",
    "SegmentedResiduals",
    "VirtualNodeCompressor",
    "ByteRLEGraph",
]
