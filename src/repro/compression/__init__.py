"""Graph compression substrate.

This package implements the compressed graph representation (CGR) of the
paper, together with the auxiliary compression techniques it uses as
preprocessing (virtual-node compression) or compares against (byte-RLE as in
Ligra+).

Layers, bottom-up:

``bitarray``
    The packed-word bit-stream engine: streams as 64-bit words (MSB-first),
    word-level field extraction and unary scans, used by every
    variable-length code.
``vlc``
    Variable-length codes: unary, Elias gamma, Elias delta and zeta_k codes
    (Boldi & Vigna), exactly as described in Appendix B of the paper, plus
    the bulk run decoders (``decode_gamma_run`` et al.) that decode whole
    residual runs per call.
``vectorized``
    Whole-graph adjacency decode in numpy SIMD rounds (the paper's parallel
    decode mapped to the CPU); reached through ``CGRGraph.decode_all``.
``reference``
    The seed's list-of-bits implementation, retained as the differential
    baseline for the property suite and the decode-throughput benchmark.
``gaps``
    Gap transformation and the sign/minimum shifting rules of Appendix C.
``intervals``
    Intervals-and-residuals split of a sorted adjacency list.
``cgr``
    The full CGR encoder/decoder for whole graphs, with optional residual
    segmentation (Section 5.2).
``segments``
    Residual segmentation layout helpers.
``virtual_nodes``
    Virtual-node compression (category (i) in the paper's related work),
    used as a preprocessing step before CGR in the evaluation.
``byte_rle``
    Byte-aligned run-length/gap encoding in the spirit of Ligra+, used by the
    Ligra+ baseline.
"""

from repro.compression.bitarray import BitReader, BitWriter, PackedBits
from repro.compression.vlc import (
    VLC_SCHEMES,
    decode_delta,
    decode_delta_run,
    decode_gamma,
    decode_gamma_run,
    decode_unary,
    decode_zeta,
    decode_zeta_run,
    encode_delta,
    encode_gamma,
    encode_unary,
    encode_zeta,
    get_scheme,
)
from repro.compression.gaps import (
    gap_decode_sequence,
    gap_encode_sequence,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.intervals import (
    IntervalResidualForm,
    merge_intervals_residuals,
    split_intervals_residuals,
)
from repro.compression.cgr import CGRConfig, CGRGraph, encode_graph
from repro.compression.segments import SegmentedResiduals
from repro.compression.virtual_nodes import VirtualNodeCompressor
from repro.compression.byte_rle import ByteRLEGraph

__all__ = [
    "BitReader",
    "BitWriter",
    "PackedBits",
    "VLC_SCHEMES",
    "encode_unary",
    "decode_unary",
    "encode_gamma",
    "decode_gamma",
    "decode_gamma_run",
    "encode_delta",
    "decode_delta",
    "decode_delta_run",
    "encode_zeta",
    "decode_zeta",
    "decode_zeta_run",
    "get_scheme",
    "zigzag_encode",
    "zigzag_decode",
    "gap_encode_sequence",
    "gap_decode_sequence",
    "IntervalResidualForm",
    "split_intervals_residuals",
    "merge_intervals_residuals",
    "CGRConfig",
    "CGRGraph",
    "encode_graph",
    "SegmentedResiduals",
    "VirtualNodeCompressor",
    "ByteRLEGraph",
]
