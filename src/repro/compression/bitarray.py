"""Bit-granular writer and reader.

CGR stores every adjacency list as a stream of variable-length codes packed
back-to-back with no byte alignment.  The paper's GPU kernels read such
streams starting at arbitrary bit offsets (``bitStart[u]``); the classes here
provide exactly that capability for the Python reproduction.

The writer accumulates bits most-significant-bit first, matching the worked
examples in the paper (Figure 2 and Figure 5) so the unit tests can assert the
exact bit strings shown there.
"""

from __future__ import annotations

from dataclasses import dataclass


class BitWriter:
    """Append-only bit buffer.

    Bits are appended MSB-first.  The finished buffer can be exported either
    as a ``bytes`` object (zero-padded to a byte boundary) or as a list of
    integer bits for inspection in tests.
    """

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._bits.append(bit)

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value`` MSB-first.

        ``value`` must fit in ``width`` bits.
        """
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0:
            raise ValueError("value must be non-negative")
        if width == 0:
            if value != 0:
                raise ValueError("non-zero value with zero width")
            return
        if value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_unary(self, count: int, terminator: int = 1) -> None:
        """Append ``count`` copies of the non-terminator bit then a terminator.

        With the default terminator of 1 this writes ``count`` zeros followed
        by a one, which is the unary code used by gamma/zeta codes.
        """
        filler = 1 - terminator
        self._bits.extend([filler] * count)
        self._bits.append(terminator)

    def extend(self, other: "BitWriter") -> None:
        """Append all bits from another writer."""
        self._bits.extend(other._bits)

    def pad_to(self, bit_length: int, fill: int = 0) -> None:
        """Pad with ``fill`` bits until the buffer is ``bit_length`` long."""
        if bit_length < len(self._bits):
            raise ValueError(
                f"cannot pad to {bit_length}: already {len(self._bits)} bits"
            )
        self._bits.extend([fill] * (bit_length - len(self._bits)))

    def to_bitlist(self) -> list[int]:
        """Return a copy of the bits as a list of 0/1 integers."""
        return list(self._bits)

    def to_bitstring(self) -> str:
        """Return the bits as a string of '0'/'1' characters."""
        return "".join(str(b) for b in self._bits)

    def to_bytes(self) -> bytes:
        """Pack the bits into bytes, zero-padding the final byte."""
        out = bytearray((len(self._bits) + 7) // 8)
        for i, bit in enumerate(self._bits):
            if bit:
                out[i >> 3] |= 0x80 >> (i & 7)
        return bytes(out)


@dataclass
class BitReader:
    """Cursor over a bit sequence.

    The reader exposes an explicit ``position`` so that callers (the GCGT
    decoding kernels) can jump to the start offset of a node's compressed
    adjacency list and so that the warp-centric decoder can start speculative
    decodes from every bit offset in a window.
    """

    bits: list[int]
    position: int = 0

    @classmethod
    def from_writer(cls, writer: BitWriter, position: int = 0) -> "BitReader":
        """Create a reader over the bits accumulated by ``writer``."""
        return cls(writer.to_bitlist(), position)

    @classmethod
    def from_bitstring(cls, text: str, position: int = 0) -> "BitReader":
        """Create a reader from a string of '0'/'1' characters."""
        return cls([int(c) for c in text if c in "01"], position)

    @classmethod
    def from_bytes(cls, data: bytes, bit_length: int | None = None) -> "BitReader":
        """Create a reader from packed bytes (MSB-first within each byte)."""
        bits: list[int] = []
        for byte in data:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        if bit_length is not None:
            bits = bits[:bit_length]
        return cls(bits)

    def __len__(self) -> int:
        return len(self.bits)

    @property
    def remaining(self) -> int:
        """Number of bits left after the cursor."""
        return max(0, len(self.bits) - self.position)

    def exhausted(self) -> bool:
        """True when the cursor has reached or passed the end of the stream."""
        return self.position >= len(self.bits)

    def peek_bit(self) -> int:
        """Return the bit under the cursor without advancing."""
        if self.position >= len(self.bits):
            raise EOFError("bit stream exhausted")
        return self.bits[self.position]

    def read_bit(self) -> int:
        """Return the bit under the cursor and advance by one."""
        bit = self.peek_bit()
        self.position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits MSB-first and return them as an integer."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self.position + width > len(self.bits):
            raise EOFError(
                f"need {width} bits at position {self.position}, "
                f"only {self.remaining} remain"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self.bits[self.position]
            self.position += 1
        return value

    def read_unary(self, terminator: int = 1) -> int:
        """Read a unary code: the number of bits before the terminator."""
        count = 0
        while True:
            bit = self.read_bit()
            if bit == terminator:
                return count
            count += 1

    def seek(self, position: int) -> None:
        """Move the cursor to an absolute bit offset."""
        if position < 0:
            raise ValueError("position must be non-negative")
        self.position = position

    def fork(self, position: int | None = None) -> "BitReader":
        """Return an independent reader over the same bits.

        The warp-centric decoder uses forks so that each simulated lane can
        decode speculatively from its own offset without disturbing others.
        """
        return BitReader(self.bits, self.position if position is None else position)
