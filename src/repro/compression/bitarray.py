"""Packed-word bit-stream engine.

CGR stores every adjacency list as a stream of variable-length codes packed
back-to-back with no byte alignment.  The paper's GPU kernels read such
streams starting at arbitrary bit offsets (``bitStart[u]``); the classes here
provide exactly that capability for the Python reproduction.

The seed implementation kept one Python ``int`` object **per bit** and walked
streams bit by bit, which made the interpreter -- not the memory system -- the
bottleneck of every decode.  This module stores streams as packed 64-bit
words instead (:class:`PackedBits`): word ``i`` holds stream bits
``[64*i, 64*i + 64)`` MSB-first, so the bit at absolute offset ``p`` lives in
word ``p >> 6`` at in-word position ``p & 63`` counted from the most
significant bit.  All reads are word-level:

* :meth:`PackedBits.extract` fetches an arbitrary MSB-first field with at most
  ``ceil(width / 64) + 1`` word reads (shifts and masks, no per-bit work);
* :meth:`PackedBits.scan` finds the next terminator bit of a unary code a
  word at a time, locating the bit inside the word with ``int.bit_length``
  (a constant-time leading-zero count);
* bulk conversions (:meth:`PackedBits.from_bytes`, :meth:`to_bitlist`) go
  through ``numpy``'s ``frombuffer``/``packbits``/``unpackbits`` instead of
  per-bit Python loops.

The writer accumulates bits most-significant-bit first, matching the worked
examples in the paper (Figure 2 and Figure 5) so the unit tests can assert
the exact bit strings shown there: every emitted bit string is identical to
the seed's, only the storage and the decode cost changed.  The seed
list-of-bits implementation is retained verbatim in
:mod:`repro.compression.reference` as the differential baseline.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

#: Bits per storage word.  64 keeps any single VLC code of the scaled graphs
#: (gaps < 2^32, so codes well under 64 bits) inside at most two words.
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


class PackedBits:
    """A bit sequence stored as packed 64-bit words, MSB-first.

    The completed prefix lives in ``_words`` (each a full 64-bit int); the
    trailing partial word lives in an accumulator holding ``_acc_bits < 64``
    bits right-aligned.  The class supports both appending (the writer
    surface) and random-access reading (:meth:`extract` / :meth:`scan`), so a
    finished stream can be handed to readers without a copy -- the CGR graph
    freezes the writer by convention and :class:`BitReader` walks it in place.
    """

    __slots__ = ("_words", "_acc", "_acc_bits", "_length")

    def __init__(self) -> None:
        self._words: list[int] = []
        self._acc = 0
        self._acc_bits = 0
        self._length = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes, bit_length: int | None = None) -> "PackedBits":
        """Bulk-load packed bytes (MSB-first within each byte).

        The byte payload is reinterpreted as big-endian 64-bit words in one
        ``numpy`` pass -- no per-bit Python loop.  ``bit_length`` truncates
        trailing padding bits; it is clamped to the available bits.
        """
        total_bits = len(data) * 8
        if bit_length is None or bit_length > total_bits:
            bit_length = total_bits
        padding = -len(data) % 8
        padded = data + b"\x00" * padding if padding else data
        return cls.from_buffer(padded, bit_length)

    @classmethod
    def from_buffer(cls, buffer, bit_length: int) -> "PackedBits":
        """Wrap a word-aligned buffer of big-endian 64-bit words, copy-free.

        ``buffer`` is anything the buffer protocol accepts (``bytes``,
        ``memoryview``, an ``mmap`` region) whose length is a multiple of 8;
        it is viewed through ``numpy.frombuffer`` -- no byte copy -- and
        converted to storage words in one bulk pass.  This is the load path
        of the persistent store (:mod:`repro.store`): a file's payload
        section is exactly this word layout (see ``to_word_bytes``), so a
        saved stream is reconstructed without decoding a single VLC code.
        """
        if bit_length < 0:
            raise ValueError(f"bit_length must be non-negative, got {bit_length}")
        view = memoryview(buffer)
        if view.nbytes % 8:
            raise ValueError(
                f"buffer length {view.nbytes} is not a multiple of 8 bytes"
            )
        if bit_length > view.nbytes * 8:
            raise ValueError(
                f"bit_length {bit_length} exceeds buffer capacity {view.nbytes * 8}"
            )
        obj = cls()
        if bit_length == 0:
            return obj
        words = np.frombuffer(view, dtype=">u8").tolist()
        full = bit_length >> 6
        obj._words = words[:full]
        rem = bit_length & 63
        if rem:
            obj._acc = words[full] >> (WORD_BITS - rem)
            obj._acc_bits = rem
        obj._length = bit_length
        return obj

    @classmethod
    def from_bitlist(cls, bits: Sequence[int]) -> "PackedBits":
        """Pack a list of 0/1 integers (``numpy.packbits`` does the work)."""
        if len(bits) == 0:
            return cls()
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.ndim != 1 or int(arr.max(initial=0)) > 1:
            raise ValueError("bits must be a flat sequence of 0/1 integers")
        return cls.from_bytes(np.packbits(arr).tobytes(), len(bits))

    @classmethod
    def from_bitstring(cls, text: str) -> "PackedBits":
        """Pack a string of '0'/'1' characters (other characters are skipped)."""
        filtered = "".join(c for c in text if c in "01")
        obj = cls()
        if filtered:
            obj.write_bits(int(filtered, 2), len(filtered))
        return obj

    # -- writer surface -------------------------------------------------------

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._append(bit, 1)

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value`` MSB-first.

        ``value`` must fit in ``width`` bits.
        """
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0:
            raise ValueError("value must be non-negative")
        if width == 0:
            if value != 0:
                raise ValueError("non-zero value with zero width")
            return
        if value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._append(value, width)

    def write_unary(self, count: int, terminator: int = 1) -> None:
        """Append ``count`` copies of the non-terminator bit then a terminator.

        With the default terminator of 1 this writes ``count`` zeros followed
        by a one, which is the unary code used by gamma/zeta codes.  The whole
        code is appended as one ``count + 1``-bit field, not bit by bit.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if terminator == 1:
            self._append(1, count + 1)
        else:
            self._append(((1 << count) - 1) << 1, count + 1)

    def extend(self, other: "PackedBits") -> None:
        """Append all bits from another packed buffer (word-at-a-time)."""
        if self._acc_bits == 0:
            self._words.extend(other._words)
            self._length = len(self._words) << 6
        else:
            append = self._append
            for word in other._words:
                append(word, WORD_BITS)
        if other._acc_bits:
            self._append(other._acc, other._acc_bits)

    def pad_to(self, bit_length: int, fill: int = 0) -> None:
        """Pad with ``fill`` bits until the buffer is ``bit_length`` long."""
        missing = bit_length - self._length
        if missing < 0:
            raise ValueError(
                f"cannot pad to {bit_length}: already {self._length} bits"
            )
        if missing:
            self._append((1 << missing) - 1 if fill else 0, missing)

    def _append(self, value: int, width: int) -> None:
        """Append a validated MSB-first field, flushing full 64-bit words."""
        acc = self._acc
        acc_bits = self._acc_bits
        words = self._words
        while width:
            space = WORD_BITS - acc_bits
            if width < space:
                acc = (acc << width) | value
                acc_bits += width
                break
            width -= space
            words.append((acc << space) | (value >> width))
            value &= (1 << width) - 1
            acc = 0
            acc_bits = 0
        self._acc = acc
        self._acc_bits = acc_bits
        self._length = (len(words) << 6) + acc_bits

    # -- word-level read primitives -------------------------------------------

    def _word_at(self, index: int) -> int:
        """Storage word ``index`` with the partial tail zero-padded."""
        words = self._words
        if index < len(words):
            return words[index]
        if index == len(words) and self._acc_bits:
            return self._acc << (WORD_BITS - self._acc_bits)
        return 0

    def extract(self, position: int, width: int) -> int:
        """Read ``width`` bits MSB-first starting at absolute ``position``.

        Pure word shifts and masks; touches ``ceil(width / 64) + 1`` words at
        most.  Raises :class:`EOFError` when the field overruns the stream.
        """
        if width == 0:
            return 0
        end = position + width
        if position < 0 or end > self._length:
            raise EOFError(
                f"need {width} bits at position {position}, "
                f"only {max(0, self._length - position)} remain"
            )
        first = position >> 6
        last = (end - 1) >> 6
        if first == last:
            word = self._word_at(first)
            return (word >> (((last + 1) << 6) - end)) & ((1 << width) - 1)
        value = self._word_at(first)
        for index in range(first + 1, last + 1):
            value = (value << WORD_BITS) | self._word_at(index)
        value >>= ((last + 1) << 6) - end
        return value & ((1 << width) - 1)

    def scan(self, position: int, terminator: int = 1) -> int:
        """Absolute offset of the first ``terminator`` bit at or after
        ``position``, or -1 when the stream ends first.

        This is the unary-scan primitive: whole 64-bit words holding no
        terminator are skipped in one comparison each, and the terminator is
        located inside its word with ``int.bit_length`` (a constant-time
        leading-zero count, the role the lookup tables play in the C/CUDA
        implementations).
        """
        length = self._length
        if position < 0:
            raise ValueError("position must be non-negative")
        if position >= length:
            return -1
        index = position >> 6
        last = (length - 1) >> 6
        word = self._word_at(index)
        if terminator == 0:
            word = ~word & _WORD_MASK
        offset = position & 63
        if offset:
            word &= _WORD_MASK >> offset
        while word == 0:
            index += 1
            if index > last:
                return -1
            word = self._word_at(index)
            if terminator == 0:
                word = ~word & _WORD_MASK
        found = (index << 6) + (WORD_BITS - word.bit_length())
        return found if found < length else -1

    # -- sizes and compat accessors -------------------------------------------

    @property
    def bit_length(self) -> int:
        """Number of bits in the buffer."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, position: int) -> int:
        """The bit at ``position`` (list-of-bits compatibility accessor)."""
        if position < 0:
            position += self._length
        if not 0 <= position < self._length:
            raise IndexError(f"bit index {position} out of range")
        return (self._word_at(position >> 6) >> (63 - (position & 63))) & 1

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_bitlist())

    # -- exports --------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Pack the bits into bytes, zero-padding the final byte.

        The full words convert in one numpy pass (no per-word Python work).
        """
        out = bytearray(np.array(self._words, dtype=">u8").tobytes())
        acc_bits = self._acc_bits
        if acc_bits:
            nbytes = (acc_bits + 7) >> 3
            out += (self._acc << ((nbytes << 3) - acc_bits)).to_bytes(nbytes, "big")
        return bytes(out)

    def to_word_bytes(self) -> bytes:
        """The stream as whole big-endian 64-bit words, zero-padded at the end.

        Unlike :meth:`to_bytes` (which pads to a byte boundary), the output
        length is a multiple of 8, which makes it directly loadable by
        :meth:`from_buffer` with no intermediate padding copy.  This is the
        payload layout of the persistent store's file format.
        """
        words = self._words
        if self._acc_bits:
            words = words + [self._acc << (WORD_BITS - self._acc_bits)]
        return np.array(words, dtype=">u8").tobytes()

    def to_bitlist(self) -> list[int]:
        """The bits as a list of 0/1 integers (compat shim for tests).

        Bulk-unpacked with ``numpy.unpackbits`` -- the seed's per-bit loop is
        gone, but the output is bit-identical.
        """
        if self._length == 0:
            return []
        unpacked = np.unpackbits(np.frombuffer(self.to_bytes(), dtype=np.uint8))
        return unpacked[: self._length].tolist()

    def to_bitstring(self) -> str:
        """The bits as a string of '0'/'1' characters (single bulk format)."""
        if self._length == 0:
            return ""
        value = int.from_bytes(self.to_bytes(), "big") >> (-self._length % 8)
        return format(value, "b").zfill(self._length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(bit_length={self._length})"


class BitWriter(PackedBits):
    """Append-only bit buffer (the packed-word engine's writer surface).

    Bits are appended MSB-first.  The finished buffer can be exported either
    as a ``bytes`` object (zero-padded to a byte boundary) or as a list of
    integer bits for inspection in tests -- and, being a
    :class:`PackedBits`, it can be read in place by :class:`BitReader`
    without any conversion, which is how the CGR graph and the dynamic
    overlay's side stream serve decoders directly from the written words.
    """

    __slots__ = ()


def as_packed(bits) -> PackedBits:
    """Coerce a bit container to :class:`PackedBits` (no-op when already one).

    Accepts any object with the packed read primitives (``extract``/``scan``)
    -- returned unchanged -- or a list/tuple of 0/1 integers, which is packed.
    """
    if hasattr(bits, "extract") and hasattr(bits, "scan"):
        return bits
    return PackedBits.from_bitlist(bits)


class BitReader:
    """Cursor over a packed bit sequence.

    The reader exposes an explicit ``position`` so that callers (the GCGT
    decoding kernels) can jump to the start offset of a node's compressed
    adjacency list and so that the warp-centric decoder can start speculative
    decodes from every bit offset in a window.

    ``bits`` may be a :class:`PackedBits` (or anything exposing its
    ``extract``/``scan``/``__len__`` read surface, e.g. the dynamic overlay's
    spliced view), or a plain list of 0/1 integers, which is packed on entry
    for backwards compatibility with the seed API.
    """

    __slots__ = ("bits", "position")

    def __init__(self, bits, position: int = 0) -> None:
        self.bits = as_packed(bits)
        self.position = position

    @classmethod
    def from_writer(cls, writer: BitWriter, position: int = 0) -> "BitReader":
        """Create a reader over the bits accumulated by ``writer``."""
        return cls(writer, position)

    @classmethod
    def from_bitstring(cls, text: str, position: int = 0) -> "BitReader":
        """Create a reader from a string of '0'/'1' characters."""
        return cls(PackedBits.from_bitstring(text), position)

    @classmethod
    def from_bytes(cls, data: bytes, bit_length: int | None = None) -> "BitReader":
        """Create a reader from packed bytes (MSB-first within each byte)."""
        return cls(PackedBits.from_bytes(data, bit_length))

    def __len__(self) -> int:
        return len(self.bits)

    @property
    def remaining(self) -> int:
        """Number of bits left after the cursor."""
        return max(0, len(self.bits) - self.position)

    def exhausted(self) -> bool:
        """True when the cursor has reached or passed the end of the stream."""
        return self.position >= len(self.bits)

    def peek_bit(self) -> int:
        """Return the bit under the cursor without advancing."""
        if self.position >= len(self.bits):
            raise EOFError("bit stream exhausted")
        return self.bits.extract(self.position, 1)

    def read_bit(self) -> int:
        """Return the bit under the cursor and advance by one."""
        bit = self.peek_bit()
        self.position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits MSB-first and return them as an integer."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self.position + width > len(self.bits):
            # Checked here (not just in extract) so that a zero-width read
            # past the end still raises, exactly like the seed reader.
            raise EOFError(
                f"need {width} bits at position {self.position}, "
                f"only {self.remaining} remain"
            )
        value = self.bits.extract(self.position, width)
        self.position += width
        return value

    def read_unary(self, terminator: int = 1) -> int:
        """Read a unary code: the number of bits before the terminator.

        One word-level :meth:`PackedBits.scan` instead of a per-bit loop.
        """
        found = self.bits.scan(self.position, terminator)
        if found < 0:
            raise EOFError("bit stream exhausted")
        count = found - self.position
        self.position = found + 1
        return count

    def seek(self, position: int) -> None:
        """Move the cursor to an absolute bit offset."""
        if position < 0:
            raise ValueError("position must be non-negative")
        self.position = position

    def fork(self, position: int | None = None) -> "BitReader":
        """Return an independent reader over the same bits.

        The warp-centric decoder uses forks so that each simulated lane can
        decode speculatively from its own offset without disturbing others.
        """
        fork = BitReader.__new__(BitReader)
        fork.bits = self.bits
        fork.position = self.position if position is None else position
        return fork
