"""Byte-aligned difference encoding in the spirit of Ligra+.

Ligra+ (Shun, Dhulipala & Blelloch, DCC 2015) compresses CSR adjacency lists
with byte codes: each gap between consecutive (sorted) neighbours is written
as a variable number of bytes, 7 payload bits per byte plus a continuation
bit, with the first gap taken relative to the source node and sign-encoded.
This is the representation the paper's Ligra+ baseline operates on, so the
reproduction needs it to measure that baseline's compression rate and to run
the Ligra+-style CPU traversal over genuinely compressed data.

Unlike CGR this format is byte-aligned and has no intervals, which is exactly
why it compresses web-like graphs less aggressively -- a difference Figure 8
relies on.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.compression.gaps import zigzag_decode, zigzag_encode

#: Bits per edge of the uncompressed 32-bit CSR baseline.
UNCOMPRESSED_BITS_PER_EDGE = 32


def _encode_varint(out: bytearray, value: int) -> None:
    """Append ``value >= 0`` as a little-endian base-128 varint."""
    if value < 0:
        raise ValueError(f"varint values must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, position: int) -> tuple[int, int]:
    """Decode one varint at ``position``; return (value, next position)."""
    value = 0
    shift = 0
    while True:
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7


class ByteRLEGraph:
    """A graph whose adjacency lists are stored as byte-coded gap sequences."""

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        payload: bytes,
        offsets: np.ndarray,
        degrees: np.ndarray,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.payload = payload
        self.offsets = offsets
        self.degrees = degrees

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "ByteRLEGraph":
        """Encode a graph given as adjacency lists."""
        out = bytearray()
        offsets = np.zeros(len(adjacency) + 1, dtype=np.int64)
        degrees = np.zeros(len(adjacency), dtype=np.int64)
        num_edges = 0
        for node, raw_neighbors in enumerate(adjacency):
            offsets[node] = len(out)
            neighbors = sorted(set(raw_neighbors))
            degrees[node] = len(neighbors)
            num_edges += len(neighbors)
            previous: int | None = None
            for index, neighbor in enumerate(neighbors):
                if index == 0:
                    _encode_varint(out, zigzag_encode(neighbor - node))
                else:
                    assert previous is not None
                    _encode_varint(out, neighbor - previous - 1)
                previous = neighbor
        offsets[len(adjacency)] = len(out)
        return cls(
            num_nodes=len(adjacency),
            num_edges=num_edges,
            payload=bytes(out),
            offsets=offsets,
            degrees=degrees,
        )

    def neighbors(self, node: int) -> list[int]:
        """Decode and return the sorted adjacency list of ``node``."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        position = int(self.offsets[node])
        degree = int(self.degrees[node])
        result: list[int] = []
        previous: int | None = None
        for index in range(degree):
            gap, position = _decode_varint(self.payload, position)
            if index == 0:
                previous = node + zigzag_decode(gap)
            else:
                assert previous is not None
                previous = previous + gap + 1
            result.append(previous)
        return result

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return int(self.degrees[node])

    @property
    def bits_per_edge(self) -> float:
        """Average payload bits per edge (degree array excluded, as in Ligra+)."""
        if self.num_edges == 0:
            return math.nan
        return 8 * len(self.payload) / self.num_edges

    @property
    def compression_rate(self) -> float:
        """32 / bits-per-edge, matching the paper's metric."""
        if self.num_edges == 0:
            return math.nan
        return UNCOMPRESSED_BITS_PER_EDGE / self.bits_per_edge
