"""Gap transformation and value-shifting rules of CGR.

After the intervals/residuals split, CGR stores every sequence as differences
("gaps") between consecutive elements so the magnitudes -- and therefore the
VLC code lengths -- stay small (Section 3.1, "Gap Transformation").

Appendix C adds three shifting rules that this module centralises:

* the *first* gap of both the interval area and the residual area is taken
  relative to the source node and may be negative, so it is mapped to a
  non-negative integer with a zig-zag style transform (:func:`zigzag_encode`);
* subsequent gaps are at least 1 and interval lengths are at least the
  configured minimum, so those known minimums are subtracted before encoding;
* the VLC codes cannot represent 0, so every value is finally shifted by +1.

Keeping the rules in one place means the encoder (:mod:`repro.compression.cgr`)
and all decoders (sequential and warp-centric) share a single source of truth.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "from_vlc_value",
    "gap_decode_sequence",
    "gap_decode_vlc_run",
    "gap_encode_sequence",
    "to_vlc_value",
    "zigzag_decode",
    "zigzag_encode",
]


def zigzag_encode(value: int) -> int:
    """Map a possibly-negative integer to a non-negative one.

    Non-negative ``v`` maps to ``2v``; negative ``v`` maps to ``2|v| - 1``.
    This is the transform used for the first interval start and the first
    residual, which are stored relative to the source node and may precede it.
    """
    if value >= 0:
        return 2 * value
    return 2 * (-value) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value < 0:
        raise ValueError(f"zig-zag encoded values are non-negative, got {value}")
    if value % 2 == 0:
        return value // 2
    return -((value + 1) // 2)


def to_vlc_value(value: int) -> int:
    """Apply the final "+1" shift so a non-negative value becomes VLC-encodable."""
    if value < 0:
        raise ValueError(f"value must be non-negative before the +1 shift, got {value}")
    return value + 1


def from_vlc_value(value: int) -> int:
    """Undo the "+1" shift applied by :func:`to_vlc_value`."""
    if value < 1:
        raise ValueError(f"VLC-decoded values are >= 1, got {value}")
    return value - 1


def gap_encode_sequence(values: Sequence[int], reference: int) -> list[int]:
    """Turn a strictly increasing sequence into gaps.

    The first gap is ``values[0] - reference`` passed through
    :func:`zigzag_encode` (it may be negative); each later gap is the
    difference from the previous element minus 1 (consecutive residuals are
    distinct, so raw gaps are at least 1).
    """
    if not values:
        return []
    gaps = [zigzag_encode(values[0] - reference)]
    previous = values[0]
    for value in values[1:]:
        step = value - previous
        if step < 1:
            raise ValueError(
                "sequence must be strictly increasing: "
                f"{value} follows {previous}"
            )
        gaps.append(step - 1)
        previous = value
    return gaps


def gap_decode_sequence(gaps: Iterable[int], reference: int) -> list[int]:
    """Inverse of :func:`gap_encode_sequence`."""
    values: list[int] = []
    previous: int | None = None
    for index, gap in enumerate(gaps):
        if index == 0:
            previous = reference + zigzag_decode(gap)
        else:
            assert previous is not None
            previous = previous + gap + 1
        values.append(previous)
    return values


def gap_decode_vlc_run(values: Sequence[int], reference: int) -> list[int]:
    """Rebuild absolute node ids from one *raw* VLC-decoded residual run.

    The hot-path composition of :func:`from_vlc_value` and
    :func:`gap_decode_sequence` in a single pass: ``values`` are the codes a
    scheme's bulk ``decode_run`` produced, still carrying the "+1" shift.
    The first value is unshifted and zig-zag decoded relative to
    ``reference``; every follower collapses to ``previous + value`` (undoing
    the "+1" shift and re-adding the "gaps are at least 1" offset cancel).
    """
    ids: list[int] = []
    previous: int | None = None
    for value in values:
        if value < 1:
            raise ValueError(f"VLC-decoded values are >= 1, got {value}")
        if previous is None:
            previous = reference + zigzag_decode(value - 1)
        else:
            previous = previous + value
        ids.append(previous)
    return ids
