"""Intervals-and-residuals representation of a sorted adjacency list.

Real-world adjacency lists exhibit locality: runs of consecutive node ids.
CGR records every maximal run whose length reaches a configurable minimum as
an *interval* ``(start, length)`` and the remaining neighbours as *residuals*
(Section 3.1, "Intervals and Residuals Representation").

This module performs the split and its inverse, independent of how the two
sequences are later encoded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

#: Sentinel for "never form intervals" (the ``inf`` setting of Figure 12).
NO_INTERVALS = float("inf")


@dataclass(frozen=True)
class Interval:
    """A run of consecutive neighbour ids ``start, start+1, ..., start+length-1``."""

    start: int
    length: int

    def nodes(self) -> range:
        """The neighbour ids covered by the interval."""
        return range(self.start, self.start + self.length)

    @property
    def end(self) -> int:
        """The last node id covered by the interval."""
        return self.start + self.length - 1


@dataclass
class IntervalResidualForm:
    """The two sequences CGR derives from one adjacency list."""

    degree: int
    intervals: list[Interval] = field(default_factory=list)
    residuals: list[int] = field(default_factory=list)

    @property
    def interval_count(self) -> int:
        """Number of intervals in the split."""
        return len(self.intervals)

    @property
    def residual_count(self) -> int:
        """Number of residual neighbours in the split."""
        return len(self.residuals)

    @property
    def interval_coverage(self) -> int:
        """How many neighbours are represented by intervals."""
        return sum(interval.length for interval in self.intervals)


def split_intervals_residuals(
    neighbors: Sequence[int],
    min_interval_length: int | float = 4,
) -> IntervalResidualForm:
    """Split a sorted, duplicate-free adjacency list into intervals and residuals.

    Runs of consecutive ids shorter than ``min_interval_length`` stay in the
    residual sequence.  Passing :data:`NO_INTERVALS` (or any value larger than
    the list) disables intervals entirely, which is the ``inf`` configuration
    of the minimum-interval-length sweep in the paper.
    """
    if isinstance(min_interval_length, (int, float)) and min_interval_length < 2:
        raise ValueError(
            f"min_interval_length must be >= 2 (or inf), got {min_interval_length}"
        )
    for i in range(1, len(neighbors)):
        if neighbors[i] <= neighbors[i - 1]:
            raise ValueError("adjacency list must be strictly increasing")

    form = IntervalResidualForm(degree=len(neighbors))
    run_start = 0
    n = len(neighbors)

    def flush_run(start_index: int, end_index: int) -> None:
        """Classify the run ``neighbors[start_index:end_index]`` (consecutive ids)."""
        run_length = end_index - start_index
        if run_length >= min_interval_length:
            form.intervals.append(
                Interval(start=neighbors[start_index], length=run_length)
            )
        else:
            form.residuals.extend(neighbors[start_index:end_index])

    for i in range(1, n + 1):
        is_break = i == n or neighbors[i] != neighbors[i - 1] + 1
        if is_break:
            flush_run(run_start, i)
            run_start = i
    return form


def merge_intervals_residuals(form: IntervalResidualForm) -> list[int]:
    """Reconstruct the sorted adjacency list from an intervals/residuals split."""
    neighbors: list[int] = []
    for interval in form.intervals:
        neighbors.extend(interval.nodes())
    neighbors.extend(form.residuals)
    neighbors.sort()
    if len(neighbors) != form.degree:
        raise ValueError(
            f"inconsistent form: degree={form.degree} but "
            f"{len(neighbors)} neighbours reconstructed"
        )
    return neighbors
