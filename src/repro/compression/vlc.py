"""Variable-length codes (VLC) used by CGR.

The paper (Appendix B) uses two families of instantaneous codes for positive
integers:

* **Elias gamma code** -- the unary length of the value's significant bits,
  followed by the significant bits with the leading ``1`` omitted.
* **zeta_k code** (Boldi & Vigna) -- a unary count ``h`` meaning the value is
  written in exactly ``h * k`` binary digits, followed by those digits.  With
  ``k = 1`` the code degenerates to (a variant of) gamma.

Both code families encode integers ``>= 1``; CGR applies a ``+1`` shift before
encoding whenever a value may legally be zero (Appendix C), which is handled
by :mod:`repro.compression.gaps` and :mod:`repro.compression.cgr`.

The module-level :data:`VLC_SCHEMES` registry maps scheme names (``"gamma"``,
``"zeta2"`` ... ``"zeta6"``, ``"delta"``) to :class:`VLCScheme` objects so that
the benchmark harness can sweep encoding schemes exactly as Figure 11 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compression.bitarray import BitReader, BitWriter


class VLCError(ValueError):
    """Raised when a value cannot be encoded by the selected code."""


def _require_positive(value: int) -> None:
    if value < 1:
        raise VLCError(f"VLC codes encode integers >= 1, got {value}")


# ---------------------------------------------------------------------------
# Unary code
# ---------------------------------------------------------------------------

def encode_unary(writer: BitWriter, value: int) -> None:
    """Encode ``value >= 0`` as ``value`` zeros followed by a one."""
    if value < 0:
        raise VLCError(f"unary code encodes integers >= 0, got {value}")
    writer.write_unary(value)


def decode_unary(reader: BitReader) -> int:
    """Decode a unary code: count of zeros before the terminating one."""
    return reader.read_unary()


# ---------------------------------------------------------------------------
# Elias gamma code
# ---------------------------------------------------------------------------

def encode_gamma(writer: BitWriter, value: int) -> None:
    """Encode ``value >= 1`` in Elias gamma code.

    Layout: ``L-1`` zeros, a one, then the ``L-1`` bits of ``value`` below its
    leading one, where ``L`` is the bit length of ``value``.  Examples from
    Table 3 of the paper: ``1 -> 1``, ``2 -> 010``, ``12 -> 0001100``.
    """
    _require_positive(value)
    length = value.bit_length()
    writer.write_unary(length - 1)
    writer.write_bits(value - (1 << (length - 1)), length - 1)


def decode_gamma(reader: BitReader) -> int:
    """Decode one Elias gamma code and return the integer."""
    length = reader.read_unary() + 1
    rest = reader.read_bits(length - 1)
    return (1 << (length - 1)) | rest


# ---------------------------------------------------------------------------
# Elias delta code (not used in the paper's chosen configuration, provided
# for completeness of the codec substrate and for ablations)
# ---------------------------------------------------------------------------

def encode_delta(writer: BitWriter, value: int) -> None:
    """Encode ``value >= 1`` in Elias delta code (gamma-coded length)."""
    _require_positive(value)
    length = value.bit_length()
    encode_gamma(writer, length)
    writer.write_bits(value - (1 << (length - 1)), length - 1)


def decode_delta(reader: BitReader) -> int:
    """Decode one Elias delta code and return the integer."""
    length = decode_gamma(reader)
    rest = reader.read_bits(length - 1)
    return (1 << (length - 1)) | rest


# ---------------------------------------------------------------------------
# zeta_k code
# ---------------------------------------------------------------------------

def encode_zeta(writer: BitWriter, value: int, k: int) -> None:
    """Encode ``value >= 1`` in the paper's zeta_k layout.

    The unary prefix holds ``h`` (written as ``h - 1`` zeros and a one) where
    ``h`` is the smallest integer such that ``value`` fits in ``h * k`` binary
    digits; the suffix is ``value`` written in exactly ``h * k`` digits.
    Examples from Table 3: ``zeta3(1) = 1001``, ``zeta3(12) = 01001100``,
    ``zeta2(34) = 001100010``.
    """
    _require_positive(value)
    if k < 1:
        raise VLCError(f"zeta parameter k must be >= 1, got {k}")
    h = 1
    while value >= (1 << (h * k)):
        h += 1
    writer.write_unary(h - 1)
    writer.write_bits(value, h * k)


def decode_zeta(reader: BitReader, k: int) -> int:
    """Decode one zeta_k code and return the integer."""
    if k < 1:
        raise VLCError(f"zeta parameter k must be >= 1, got {k}")
    h = reader.read_unary() + 1
    return reader.read_bits(h * k)


# ---------------------------------------------------------------------------
# Scheme registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VLCScheme:
    """A named encode/decode pair over positive integers."""

    name: str
    encode: Callable[[BitWriter, int], None]
    decode: Callable[[BitReader], int]

    def encoded_length(self, value: int) -> int:
        """Number of bits this scheme needs for ``value``."""
        writer = BitWriter()
        self.encode(writer, value)
        return writer.bit_length

    def encode_to_bits(self, value: int) -> str:
        """Return the code word for ``value`` as a bit string (for tests)."""
        writer = BitWriter()
        self.encode(writer, value)
        return writer.to_bitstring()


def _make_zeta_scheme(k: int) -> VLCScheme:
    return VLCScheme(
        name=f"zeta{k}",
        encode=lambda writer, value, _k=k: encode_zeta(writer, value, _k),
        decode=lambda reader, _k=k: decode_zeta(reader, _k),
    )


VLC_SCHEMES: dict[str, VLCScheme] = {
    "gamma": VLCScheme("gamma", encode_gamma, decode_gamma),
    "delta": VLCScheme("delta", encode_delta, decode_delta),
}
for _k in range(2, 7):
    VLC_SCHEMES[f"zeta{_k}"] = _make_zeta_scheme(_k)


def get_scheme(name: str) -> VLCScheme:
    """Look up a VLC scheme by name (``gamma``, ``delta``, ``zeta2``..``zeta6``).

    Raises ``KeyError`` with the list of known names when the name is unknown.
    """
    try:
        return VLC_SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(VLC_SCHEMES))
        raise KeyError(f"unknown VLC scheme {name!r}; known schemes: {known}") from None
