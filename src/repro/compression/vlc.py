"""Variable-length codes (VLC) used by CGR.

The paper (Appendix B) uses two families of instantaneous codes for positive
integers:

* **Elias gamma code** -- the unary length of the value's significant bits,
  followed by the significant bits with the leading ``1`` omitted.
* **zeta_k code** (Boldi & Vigna) -- a unary count ``h`` meaning the value is
  written in exactly ``h * k`` binary digits, followed by those digits.  With
  ``k = 1`` the code degenerates to (a variant of) gamma.

Both code families encode integers ``>= 1``; CGR applies a ``+1`` shift before
encoding whenever a value may legally be zero (Appendix C), which is handled
by :mod:`repro.compression.gaps` and :mod:`repro.compression.cgr`.

The module-level :data:`VLC_SCHEMES` registry maps scheme names (``"gamma"``,
``"zeta2"`` ... ``"zeta6"``, ``"delta"``) to :class:`VLCScheme` objects so that
the benchmark harness can sweep encoding schemes exactly as Figure 11 does.

Besides the one-value ``encode``/``decode`` pair, every scheme exposes a
**bulk run decoder** (:func:`decode_gamma_run`, :func:`decode_delta_run`,
:func:`decode_zeta_run`, reachable uniformly through
:meth:`VLCScheme.decode_run` / :meth:`VLCScheme.decode_run_positions`) that
decodes ``n`` consecutive codes per call against the packed-word read
primitives of :class:`~repro.compression.bitarray.PackedBits` -- one
word-level unary scan plus one field extract per code, with no per-bit Python
work and no per-value reader dispatch.  CGR residual runs, the traversal
plans' pre-decode and the warp-centric decoder all go through this API; on
readers whose backing store lacks the packed primitives (e.g. the retained
:mod:`repro.compression.reference` baseline) the bulk calls fall back to the
serial per-value path, so the decoded values are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.compression.bitarray import BitReader, BitWriter


class VLCError(ValueError):
    """Raised when a value cannot be encoded by the selected code."""


def _require_positive(value: int) -> None:
    if value < 1:
        raise VLCError(f"VLC codes encode integers >= 1, got {value}")


# ---------------------------------------------------------------------------
# Unary code
# ---------------------------------------------------------------------------

def encode_unary(writer: BitWriter, value: int) -> None:
    """Encode ``value >= 0`` as ``value`` zeros followed by a one."""
    if value < 0:
        raise VLCError(f"unary code encodes integers >= 0, got {value}")
    writer.write_unary(value)


def decode_unary(reader: BitReader) -> int:
    """Decode a unary code: count of zeros before the terminating one."""
    return reader.read_unary()


# ---------------------------------------------------------------------------
# Elias gamma code
# ---------------------------------------------------------------------------

def encode_gamma(writer: BitWriter, value: int) -> None:
    """Encode ``value >= 1`` in Elias gamma code.

    Layout: ``L-1`` zeros, a one, then the ``L-1`` bits of ``value`` below its
    leading one, where ``L`` is the bit length of ``value``.  Examples from
    Table 3 of the paper: ``1 -> 1``, ``2 -> 010``, ``12 -> 0001100``.
    """
    _require_positive(value)
    length = value.bit_length()
    writer.write_unary(length - 1)
    writer.write_bits(value - (1 << (length - 1)), length - 1)


def decode_gamma(reader: BitReader) -> int:
    """Decode one Elias gamma code and return the integer."""
    length = reader.read_unary() + 1
    rest = reader.read_bits(length - 1)
    return (1 << (length - 1)) | rest


# ---------------------------------------------------------------------------
# Elias delta code (not used in the paper's chosen configuration, provided
# for completeness of the codec substrate and for ablations)
# ---------------------------------------------------------------------------

def encode_delta(writer: BitWriter, value: int) -> None:
    """Encode ``value >= 1`` in Elias delta code (gamma-coded length)."""
    _require_positive(value)
    length = value.bit_length()
    encode_gamma(writer, length)
    writer.write_bits(value - (1 << (length - 1)), length - 1)


def decode_delta(reader: BitReader) -> int:
    """Decode one Elias delta code and return the integer."""
    length = decode_gamma(reader)
    rest = reader.read_bits(length - 1)
    return (1 << (length - 1)) | rest


# ---------------------------------------------------------------------------
# zeta_k code
# ---------------------------------------------------------------------------

def encode_zeta(writer: BitWriter, value: int, k: int) -> None:
    """Encode ``value >= 1`` in the paper's zeta_k layout.

    The unary prefix holds ``h`` (written as ``h - 1`` zeros and a one) where
    ``h`` is the smallest integer such that ``value`` fits in ``h * k`` binary
    digits; the suffix is ``value`` written in exactly ``h * k`` digits.
    Examples from Table 3: ``zeta3(1) = 1001``, ``zeta3(12) = 01001100``,
    ``zeta2(34) = 001100010``.
    """
    _require_positive(value)
    if k < 1:
        raise VLCError(f"zeta parameter k must be >= 1, got {k}")
    h = 1
    while value >= (1 << (h * k)):
        h += 1
    writer.write_unary(h - 1)
    writer.write_bits(value, h * k)


def decode_zeta(reader: BitReader, k: int) -> int:
    """Decode one zeta_k code and return the integer."""
    if k < 1:
        raise VLCError(f"zeta parameter k must be >= 1, got {k}")
    h = reader.read_unary() + 1
    return reader.read_bits(h * k)


# ---------------------------------------------------------------------------
# Bulk run decoders (packed-word fast path)
# ---------------------------------------------------------------------------
#
# Each run decoder reads ``count`` consecutive codes against the packed
# backing store and returns ``(values, end_positions)``: the decoded integers
# in stream order and the absolute bit offset just past each code (so callers
# can reconstruct every code's bit extent).  The reader's cursor is left
# after the last code, i.e. exactly where ``count`` serial ``decode`` calls
# would have left it.  On a mid-run error (truncated stream, malformed code)
# :class:`EOFError` is raised and the reader's position is unchanged.
#
# The decoders never touch individual bits: a :class:`StreamDecoder` holds a
# right-aligned integer *window* over the stream, refilled with one bulk
# :meth:`~repro.compression.bitarray.PackedBits.extract` per up to
# ``_REFILL_BITS`` bits.  Inside the window a whole code costs a handful of
# local integer operations -- the unary prefix falls out of
# ``int.bit_length`` (a constant-time leading-zero count) and the payload out
# of one shift-and-mask -- so the per-code cost is independent of the code's
# bit count and there is no per-value method dispatch at all.  The decoder is
# seekable, so one instance can walk a whole CGR node (headers, interval
# tuples, residual segments at fixed offsets) reusing its window.

#: Bits pulled into the decode window per refill on long runs.  At the
#: paper's ~5 bits per zeta3 code one refill serves ~100 codes.  Short runs
#: (header fields) refill one word at a time instead, so decoding a 5-bit
#: count never pays for a 512-bit window.
_REFILL_BITS = 512


class StreamDecoder:
    """Seekable word-window VLC decoder over a packed bit source.

    Subclasses implement :meth:`run_positions` for one code family.  The
    window invariant: ``_buf`` holds the ``_avail`` stream bits starting at
    absolute offset :attr:`position`, right-aligned.  On a decode error the
    instance is left at its pre-call position with an empty window.
    """

    __slots__ = ("source", "position", "_extract", "_total", "_buf", "_avail")

    def __init__(self, source, position: int = 0) -> None:
        self.source = source
        self._extract = source.extract
        self._total = len(source)
        self.position = position
        self._buf = 0
        self._avail = 0

    def seek(self, position: int) -> None:
        """Jump to an absolute bit offset, keeping the window when possible.

        Forward seeks inside the buffered window (the common case: a CGR
        segment boundary a few bits ahead) just drop the skipped bits;
        anything else resets the window.
        """
        delta = position - self.position
        if 0 <= delta <= self._avail:
            self._avail -= delta
            self._buf &= (1 << self._avail) - 1
        else:
            self._buf = 0
            self._avail = 0
        self.position = position

    def run(self, count: int) -> list[int]:
        """Decode ``count`` consecutive codes and return just the values."""
        return self.run_positions(count)[0]

    def run_positions(self, count: int) -> tuple[list[int], list[int]]:
        """Decode ``count`` codes; return (values, end offsets)."""
        raise NotImplementedError  # pragma: no cover - abstract


class GammaStreamDecoder(StreamDecoder):
    """Window decoder for Elias gamma codes."""

    __slots__ = ()

    def run_positions(self, count: int) -> tuple[list[int], list[int]]:
        """Decode ``count`` gamma codes; return (values, end offsets)."""
        extract = self._extract
        total = self._total
        position = self.position
        buf = self._buf
        avail = self._avail
        refill = 64 if count <= 2 else _REFILL_BITS
        values: list[int] = []
        ends: list[int] = []
        append_value = values.append
        append_end = ends.append
        for _ in range(count):
            while True:
                if buf:
                    width = avail - buf.bit_length()  # unary zeros == payload
                    code_bits = width + 1 + width
                    if code_bits <= avail:
                        break
                take = total - position - avail
                if take <= 0:
                    self._buf = 0
                    self._avail = 0
                    raise EOFError("bit stream exhausted")
                if take > refill:
                    take = refill
                buf = (buf << take) | extract(position + avail, take)
                avail += take
            rest = avail - code_bits
            append_value((1 << width) | ((buf >> rest) & ((1 << width) - 1)))
            avail = rest
            buf &= (1 << rest) - 1
            position += code_bits
            append_end(position)
        self.position = position
        self._buf = buf
        self._avail = avail
        return values, ends


class DeltaStreamDecoder(StreamDecoder):
    """Window decoder for Elias delta codes (gamma-coded length + payload)."""

    __slots__ = ()

    def run_positions(self, count: int) -> tuple[list[int], list[int]]:
        """Decode ``count`` delta codes; return (values, end offsets)."""
        extract = self._extract
        total = self._total
        position = self.position
        buf = self._buf
        avail = self._avail
        refill = 64 if count <= 2 else _REFILL_BITS
        values: list[int] = []
        ends: list[int] = []
        append_value = values.append
        append_end = ends.append
        for _ in range(count):
            while True:
                if buf:
                    gamma_width = avail - buf.bit_length()
                    gamma_bits = gamma_width + 1 + gamma_width
                    if gamma_bits <= avail:
                        break
                take = total - position - avail
                if take <= 0:
                    self._buf = 0
                    self._avail = 0
                    raise EOFError("bit stream exhausted")
                if take > refill:
                    take = refill
                buf = (buf << take) | extract(position + avail, take)
                avail += take
            length = (1 << gamma_width) | (
                (buf >> (avail - gamma_bits)) & ((1 << gamma_width) - 1)
            )
            width = length - 1
            code_bits = gamma_bits + width
            while code_bits > avail:
                take = total - position - avail
                if take <= 0:
                    self._buf = 0
                    self._avail = 0
                    raise EOFError("bit stream exhausted")
                if take > refill:
                    take = refill
                buf = (buf << take) | extract(position + avail, take)
                avail += take
            rest = avail - code_bits
            append_value((1 << width) | ((buf >> rest) & ((1 << width) - 1)))
            avail = rest
            buf &= (1 << rest) - 1
            position += code_bits
            append_end(position)
        self.position = position
        self._buf = buf
        self._avail = avail
        return values, ends


class ZetaStreamDecoder(StreamDecoder):
    """Window decoder for zeta_k codes."""

    __slots__ = ("_k",)

    def __init__(self, source, position: int = 0, k: int = 3) -> None:
        super().__init__(source, position)
        if k < 1:
            raise VLCError(f"zeta parameter k must be >= 1, got {k}")
        self._k = k

    def run_positions(self, count: int) -> tuple[list[int], list[int]]:
        """Decode ``count`` zeta codes; return (values, end offsets)."""
        k = self._k
        extract = self._extract
        total = self._total
        position = self.position
        buf = self._buf
        avail = self._avail
        refill = 64 if count <= 2 else _REFILL_BITS
        values: list[int] = []
        ends: list[int] = []
        append_value = values.append
        append_end = ends.append
        for _ in range(count):
            while True:
                if buf:
                    zeros = avail - buf.bit_length()
                    width = (zeros + 1) * k  # h * k digits
                    code_bits = zeros + 1 + width
                    if code_bits <= avail:
                        break
                take = total - position - avail
                if take <= 0:
                    self._buf = 0
                    self._avail = 0
                    raise EOFError("bit stream exhausted")
                if take > refill:
                    take = refill
                buf = (buf << take) | extract(position + avail, take)
                avail += take
            rest = avail - code_bits
            append_value((buf >> rest) & ((1 << width) - 1))
            avail = rest
            buf &= (1 << rest) - 1
            position += code_bits
            append_end(position)
        self.position = position
        self._buf = buf
        self._avail = avail
        return values, ends


def decode_gamma_run(
    reader: BitReader, count: int
) -> tuple[list[int], list[int]]:
    """Bulk-decode ``count`` Elias gamma codes from ``reader``'s position."""
    decoder = GammaStreamDecoder(reader.bits, reader.position)
    result = decoder.run_positions(count)
    reader.position = decoder.position
    return result


def decode_delta_run(
    reader: BitReader, count: int
) -> tuple[list[int], list[int]]:
    """Bulk-decode ``count`` Elias delta codes from ``reader``'s position."""
    decoder = DeltaStreamDecoder(reader.bits, reader.position)
    result = decoder.run_positions(count)
    reader.position = decoder.position
    return result


def decode_zeta_run(
    reader: BitReader, count: int, k: int
) -> tuple[list[int], list[int]]:
    """Bulk-decode ``count`` zeta_k codes from ``reader``'s position."""
    decoder = ZetaStreamDecoder(reader.bits, reader.position, k)
    result = decoder.run_positions(count)
    reader.position = decoder.position
    return result


# ---------------------------------------------------------------------------
# Scheme registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VLCScheme:
    """A named encode/decode pair over positive integers.

    ``bulk_decode`` is the scheme's packed-word run decoder (``None`` for
    schemes without one); use :meth:`decode_run` /
    :meth:`decode_run_positions`, which pick the fast path automatically and
    fall back to serial per-value decoding on non-packed readers.
    """

    name: str
    encode: Callable[[BitWriter, int], None]
    decode: Callable[[BitReader], int]
    bulk_decode: Callable[
        [BitReader, int], tuple[list[int], list[int]]
    ] | None = field(default=None, repr=False, compare=False)
    #: Factory for a seekable :class:`StreamDecoder` over a packed source:
    #: ``stream_decoder(source, position)``.  ``None`` when the scheme has no
    #: word-window decoder.
    stream_decoder: Callable[..., StreamDecoder] | None = field(
        default=None, repr=False, compare=False
    )

    def encoded_length(self, value: int) -> int:
        """Number of bits this scheme needs for ``value``."""
        writer = BitWriter()
        self.encode(writer, value)
        return writer.bit_length

    def encode_to_bits(self, value: int) -> str:
        """Return the code word for ``value`` as a bit string (for tests)."""
        writer = BitWriter()
        self.encode(writer, value)
        return writer.to_bitstring()

    def decode_run_positions(
        self, reader: BitReader, count: int
    ) -> tuple[list[int], list[int]]:
        """Decode ``count`` consecutive codes; return (values, end offsets).

        ``end offsets`` holds the absolute bit position just past each code.
        Dispatches to the scheme's bulk word-level decoder when the reader's
        backing store exposes the packed primitives, else decodes serially --
        the results are identical, only the cost differs.
        """
        bulk = self.bulk_decode
        if bulk is not None and hasattr(reader.bits, "scan"):
            return bulk(reader, count)
        values: list[int] = []
        ends: list[int] = []
        for _ in range(count):
            values.append(self.decode(reader))
            ends.append(reader.position)
        return values, ends

    def decode_run(self, reader: BitReader, count: int) -> list[int]:
        """Decode ``count`` consecutive codes and return just the values."""
        return self.decode_run_positions(reader, count)[0]


def _make_zeta_scheme(k: int) -> VLCScheme:
    return VLCScheme(
        name=f"zeta{k}",
        encode=lambda writer, value, _k=k: encode_zeta(writer, value, _k),
        decode=lambda reader, _k=k: decode_zeta(reader, _k),
        bulk_decode=lambda reader, count, _k=k: decode_zeta_run(reader, count, _k),
        stream_decoder=lambda source, position=0, _k=k: ZetaStreamDecoder(
            source, position, _k
        ),
    )


VLC_SCHEMES: dict[str, VLCScheme] = {
    "gamma": VLCScheme(
        "gamma", encode_gamma, decode_gamma, decode_gamma_run, GammaStreamDecoder
    ),
    "delta": VLCScheme(
        "delta", encode_delta, decode_delta, decode_delta_run, DeltaStreamDecoder
    ),
}
for _k in range(2, 7):
    VLC_SCHEMES[f"zeta{_k}"] = _make_zeta_scheme(_k)


def get_scheme(name: str) -> VLCScheme:
    """Look up a VLC scheme by name (``gamma``, ``delta``, ``zeta2``..``zeta6``).

    Raises ``KeyError`` with the list of known names when the name is unknown.
    """
    try:
        return VLC_SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(VLC_SCHEMES))
        raise KeyError(f"unknown VLC scheme {name!r}; known schemes: {known}") from None
