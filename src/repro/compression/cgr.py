"""Compressed Graph Representation (CGR) encoder and decoder.

A CGR graph is a single bit stream holding, for every node, the compressed
form of its adjacency list, plus a bit-offset array ``offsets`` playing the
role of the paper's ``bitStart[]``.  The per-node layout follows Section 3.1
and Figure 6 of the paper:

Unsegmented layout (``residual_segment_bits is None``)::

    degNum | itvNum | (itv start gap, itv length)* | residual gaps*

Segmented layout (Section 5.2, Figure 6)::

    itvNum | (itv start gap, itv length)* | segNum | seg0 | seg1 | ... | segLast

where every segment except the last occupies exactly ``residual_segment_bits``
bits (padded with zero bits) and contains ``resNum`` followed by that many
residual gaps; the first residual of *every* segment is taken relative to the
source node so segments can be decoded independently and in parallel.

All quantities are written with the configured VLC scheme after the shifting
rules of Appendix C (see :mod:`repro.compression.gaps`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.compression.bitarray import BitReader, BitWriter, PackedBits, as_packed
from repro.compression.gaps import (
    from_vlc_value,
    gap_decode_vlc_run,
    to_vlc_value,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.intervals import (
    Interval,
    IntervalResidualForm,
    split_intervals_residuals,
)
from repro.compression.vlc import VLCScheme, get_scheme

#: Number of bits one edge occupies in the uncompressed CSR baseline,
#: used by the paper's "compression rate = 32 / bits-per-edge" definition.
UNCOMPRESSED_BITS_PER_EDGE = 32

#: Process-wide count of full-graph encode calls.  Encoding is the expensive
#: host-side step a serving layer must amortize, so the counter lets tests
#: (and :class:`repro.service.TraversalService` metrics) verify encode-once
#: semantics: N queries over a registered graph must not move it.
_encode_calls = 0


def encode_call_count() -> int:
    """How many times :meth:`CGRGraph.from_adjacency` ran in this process."""
    return _encode_calls


@dataclass(frozen=True)
class CGRConfig:
    """Encoding parameters (Table 2 of the paper holds the defaults).

    Attributes:
        vlc_scheme: name of the variable-length code (``"gamma"``, ``"zeta2"``,
            ... ``"zeta6"``); the paper's selected value is ``"zeta3"``.
        min_interval_length: minimum run length promoted to an interval; the
            value ``float("inf")`` disables intervals.
        residual_segment_bits: length of a residual segment in bits, or
            ``None`` to disable residual segmentation.  The paper's selected
            value is 32 bytes = 256 bits.
    """

    vlc_scheme: str = "zeta3"
    min_interval_length: int | float = 4
    residual_segment_bits: int | None = 256

    def __post_init__(self) -> None:
        get_scheme(self.vlc_scheme)  # validate eagerly
        if self.residual_segment_bits is not None and self.residual_segment_bits < 8:
            raise ValueError("residual_segment_bits must be >= 8 bits or None")

    @property
    def scheme(self) -> VLCScheme:
        """The resolved VLC scheme object."""
        return get_scheme(self.vlc_scheme)

    @property
    def residual_segment_bytes(self) -> float | None:
        """Segment length expressed in bytes (as the paper reports it)."""
        if self.residual_segment_bits is None:
            return None
        return self.residual_segment_bits / 8

    @classmethod
    def paper_defaults(cls) -> "CGRConfig":
        """The configuration of Table 2: zeta3, min interval 4, 32-byte segments."""
        return cls(vlc_scheme="zeta3", min_interval_length=4, residual_segment_bits=256)

    def to_dict(self) -> dict:
        """A JSON-safe description of the encoding parameters.

        ``min_interval_length=inf`` (intervals disabled) becomes the string
        ``"inf"`` because JSON has no infinity literal; ``None`` segment bits
        (segmentation disabled) stay ``null``.  The persistent store
        (:mod:`repro.store`) embeds this in every graph file so a reader can
        decode the payload without out-of-band knowledge.
        """
        min_interval = self.min_interval_length
        return {
            "vlc_scheme": self.vlc_scheme,
            "min_interval_length": (
                "inf" if min_interval == float("inf") else int(min_interval)
            ),
            "residual_segment_bits": self.residual_segment_bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CGRConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        min_interval = data["min_interval_length"]
        if min_interval == "inf":
            min_interval = float("inf")
        return cls(
            vlc_scheme=data["vlc_scheme"],
            min_interval_length=min_interval,
            residual_segment_bits=data["residual_segment_bits"],
        )


@dataclass
class NodeLayout:
    """Decoded structural description of one node's compressed adjacency list.

    Used by tests, by the benchmark harness (to measure interval coverage and
    residual-segment statistics) and by the GCGT kernels (to plan scheduling
    without duplicating layout logic).
    """

    node: int
    degree: int
    intervals: list[Interval] = field(default_factory=list)
    residuals: list[int] = field(default_factory=list)
    segment_offsets: list[int] = field(default_factory=list)
    segment_counts: list[int] = field(default_factory=list)
    bit_length: int = 0

    @property
    def interval_coverage(self) -> int:
        """Neighbours covered by intervals."""
        return sum(interval.length for interval in self.intervals)

    @property
    def residual_count(self) -> int:
        """Neighbours stored as residuals."""
        return len(self.residuals)


class CGRGraph:
    """A graph stored in compressed graph representation.

    Construct with :meth:`from_adjacency` (or the module-level
    :func:`encode_graph` convenience wrapper).  The public surface offers
    exact adjacency reconstruction (:meth:`neighbors`), per-node degrees,
    compression statistics and low-level access (bit stream + offsets) for
    the traversal kernels.
    """

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        bits: PackedBits | Sequence[int],
        offsets: np.ndarray,
        config: CGRConfig,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        #: The compressed stream as packed 64-bit words (a plain list of bits
        #: is packed on entry for backwards compatibility).
        self.bits = as_packed(bits)
        self.offsets = offsets
        self.config = config
        self._scheme = config.scheme
        # Hot-path decode reads one offset per node; plain-int lookups are
        # several times cheaper than numpy scalar extraction.
        self._offsets_list: list[int] = [int(v) for v in offsets]

    # -- construction -------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Sequence[Sequence[int]],
        config: CGRConfig | None = None,
    ) -> "CGRGraph":
        """Encode a full graph given as a list of sorted adjacency lists.

        Duplicate neighbours are dropped and lists are sorted before encoding;
        negative node ids cannot be represented and raise :class:`ValueError`.
        """
        global _encode_calls
        _encode_calls += 1
        config = config or CGRConfig.paper_defaults()
        scheme = config.scheme
        writer = BitWriter()
        offsets = np.zeros(len(adjacency) + 1, dtype=np.int64)
        num_edges = 0
        for node, raw_neighbors in enumerate(adjacency):
            offsets[node] = writer.bit_length
            neighbors = sorted(set(raw_neighbors))
            if neighbors and neighbors[0] < 0:
                raise ValueError(
                    f"node {node} has negative neighbour id {neighbors[0]}; "
                    "CGR encodes non-negative node ids only"
                )
            num_edges += len(neighbors)
            _encode_node(writer, scheme, config, node, neighbors)
        offsets[len(adjacency)] = writer.bit_length
        # The writer *is* the packed stream -- no per-bit materialisation.
        return cls(
            num_nodes=len(adjacency),
            num_edges=num_edges,
            bits=writer,
            offsets=offsets,
            config=config,
        )

    # -- low-level access ---------------------------------------------------

    def reader_at(self, node: int) -> BitReader:
        """A bit reader positioned at ``bitStart[node]``."""
        self._check_node(node)
        return BitReader(self.bits, int(self.offsets[node]))

    def node_bit_length(self, node: int) -> int:
        """Number of bits the compressed adjacency list of ``node`` occupies."""
        self._check_node(node)
        return int(self.offsets[node + 1] - self.offsets[node])

    # -- decoding -----------------------------------------------------------

    def layout(self, node: int) -> NodeLayout:
        """Fully decode the structural layout of ``node``'s adjacency list."""
        self._check_node(node)
        reader = self.reader_at(node)
        scheme = self._scheme
        config = self.config
        layout = NodeLayout(node=node, degree=0, bit_length=self.node_bit_length(node))

        if config.residual_segment_bits is None:
            degree = from_vlc_value(scheme.decode(reader))
            layout.degree = degree
            if degree == 0:
                return layout
            _decode_intervals(reader, scheme, config, node, layout)
            remaining = degree - layout.interval_coverage
            _decode_residual_run(reader, scheme, node, remaining, layout.residuals)
            return layout

        # Segmented layout.
        _decode_intervals(reader, scheme, config, node, layout)
        seg_count = from_vlc_value(scheme.decode(reader))
        seg_bits = config.residual_segment_bits
        base = reader.position
        for seg_index in range(seg_count):
            seg_reader = reader.fork(base + seg_index * seg_bits)
            layout.segment_offsets.append(seg_reader.position)
            res_count = from_vlc_value(scheme.decode(seg_reader))
            layout.segment_counts.append(res_count)
            _decode_residual_run(seg_reader, scheme, node, res_count, layout.residuals)
        layout.degree = layout.interval_coverage + len(layout.residuals)
        return layout

    def neighbors(self, node: int) -> list[int]:
        """The sorted adjacency list of ``node`` (exact reconstruction).

        This is the serving hot path, so it decodes straight off the packed
        stream -- headers and interval tuples with small bulk
        :meth:`~repro.compression.vlc.VLCScheme.decode_run` calls, every
        residual run with one -- without materialising the
        :class:`NodeLayout` structure that :meth:`layout` builds for
        structural consumers.  The output is identical to the layout-based
        decode (the property suites assert it).
        """
        self._check_node(node)
        make_decoder = self._scheme.stream_decoder
        if make_decoder is None:
            # Schemes without a word-window decoder fall back to the
            # structural decode; identical output, higher cost.
            return self._neighbors_via_layout(node)
        decoder = make_decoder(self.bits, self._offsets_list[node])
        config = self.config
        result: list[int] = []

        if config.residual_segment_bits is None:
            degree = from_vlc_value(decoder.run(1)[0])
            if degree == 0:
                return result
            covered = self._decode_interval_nodes(decoder, node, result)
            remaining = degree - covered
            if remaining > 0:
                result.extend(
                    gap_decode_vlc_run(decoder.run(remaining), node)
                )
        else:
            self._decode_interval_nodes(decoder, node, result)
            seg_count = from_vlc_value(decoder.run(1)[0])
            seg_bits = config.residual_segment_bits
            base = decoder.position
            for seg_index in range(seg_count):
                decoder.seek(base + seg_index * seg_bits)
                res_count = from_vlc_value(decoder.run(1)[0])
                if res_count > 0:
                    result.extend(
                        gap_decode_vlc_run(decoder.run(res_count), node)
                    )
        result.sort()
        return result

    def _neighbors_via_layout(self, node: int) -> list[int]:
        """Layout-based adjacency reconstruction (slow fallback path)."""
        layout = self.layout(node)
        result: list[int] = []
        for interval in layout.intervals:
            result.extend(interval.nodes())
        result.extend(layout.residuals)
        result.sort()
        return result

    def _decode_interval_nodes(self, decoder, node: int, out: list[int]) -> int:
        """Decode the interval area straight into member node ids.

        Appends every interval's nodes to ``out`` and returns the covered
        degree.  Mirrors :func:`_decode_intervals` without building
        :class:`~repro.compression.intervals.Interval` objects.
        """
        interval_count = from_vlc_value(decoder.run(1)[0])
        if interval_count == 0:
            return 0
        min_len = self.config.min_interval_length
        length_shift = 0 if min_len == float("inf") else int(min_len)
        covered = 0
        previous_end = node
        values = decoder.run(2 * interval_count)
        for index in range(interval_count):
            gap = from_vlc_value(values[2 * index])
            length = from_vlc_value(values[2 * index + 1]) + length_shift
            if index == 0:
                start = node + zigzag_decode(gap)
            else:
                start = previous_end + gap + 1
            out.extend(range(start, start + length))
            covered += length
            previous_end = start + length - 1
        return covered

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return self.layout(node).degree

    def iter_adjacency(self) -> Iterable[list[int]]:
        """Yield every node's adjacency list in node order."""
        for node in range(self.num_nodes):
            yield self.neighbors(node)

    def decode_all(self) -> list[list[int]]:
        """Every node's sorted adjacency list, decoded graph-at-once.

        Uses the vectorized whole-graph decoder
        (:mod:`repro.compression.vectorized`): all nodes' streams advance one
        code per numpy round, so the end-to-end throughput is far above the
        per-node :meth:`neighbors` loop.  Configurations without a vectorized
        path fall back to that loop; the output is identical either way.
        """
        from repro.compression.vectorized import (
            VectorizedDecodeUnsupported,
            decode_adjacency,
            supports,
        )

        if supports(self):
            try:
                return decode_adjacency(self)
            except VectorizedDecodeUnsupported:  # pragma: no cover - exotic
                pass
        return [self.neighbors(node) for node in range(self.num_nodes)]

    # -- statistics ---------------------------------------------------------

    @property
    def total_bits(self) -> int:
        """Size of the compressed bit stream."""
        return len(self.bits)

    @property
    def bits_per_edge(self) -> float:
        """Average number of bits per stored edge."""
        if self.num_edges == 0:
            return math.nan
        return self.total_bits / self.num_edges

    @property
    def compression_rate(self) -> float:
        """The paper's metric: 32 / bits-per-edge (larger is better)."""
        if self.num_edges == 0:
            return math.nan
        return UNCOMPRESSED_BITS_PER_EDGE / self.bits_per_edge

    def size_in_bytes(self) -> int:
        """Compressed payload size, rounded up to whole bytes, plus offsets."""
        payload = (self.total_bits + 7) // 8
        offsets = self.offsets.nbytes
        return payload + offsets

    # -- helpers ------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CGRGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"bits_per_edge={self.bits_per_edge:.2f}, scheme={self.config.vlc_scheme})"
        )


def encode_graph(
    adjacency: Sequence[Sequence[int]],
    config: CGRConfig | None = None,
) -> CGRGraph:
    """Convenience wrapper around :meth:`CGRGraph.from_adjacency`."""
    return CGRGraph.from_adjacency(adjacency, config)


def encode_node_adjacency(
    writer: BitWriter,
    config: CGRConfig,
    node: int,
    neighbors: Sequence[int],
) -> int:
    """Append the CGR encoding of one node's adjacency list to ``writer``.

    This is the per-node half of :meth:`CGRGraph.from_adjacency`, exposed so
    incremental layers (:mod:`repro.dynamic`) can re-encode a single node --
    e.g. when compacting a node's update delta back into interval/residual
    form -- without paying a whole-graph encode.  ``neighbors`` is sorted and
    de-duplicated first, exactly as the full-graph encoder does.  Returns the
    number of bits written.
    """
    cleaned = sorted(set(int(v) for v in neighbors))
    if cleaned and cleaned[0] < 0:
        raise ValueError(
            f"node {node} has negative neighbour id {cleaned[0]}; "
            "CGR encodes non-negative node ids only"
        )
    before = writer.bit_length
    _encode_node(writer, config.scheme, config, node, cleaned)
    return writer.bit_length - before


# ---------------------------------------------------------------------------
# Encoding internals
# ---------------------------------------------------------------------------

def _encode_node(
    writer: BitWriter,
    scheme: VLCScheme,
    config: CGRConfig,
    node: int,
    neighbors: Sequence[int],
) -> None:
    """Append the compressed adjacency list of ``node`` to ``writer``."""
    form = split_intervals_residuals(neighbors, config.min_interval_length)
    if config.residual_segment_bits is None:
        scheme.encode(writer, to_vlc_value(form.degree))
        if form.degree == 0:
            return
        _encode_intervals(writer, scheme, config, node, form)
        _encode_residual_run(writer, scheme, node, form.residuals)
        return

    _encode_intervals(writer, scheme, config, node, form, always=True)
    _encode_segmented_residuals(writer, scheme, config, node, form.residuals)


def _encode_intervals(
    writer: BitWriter,
    scheme: VLCScheme,
    config: CGRConfig,
    node: int,
    form: IntervalResidualForm,
    always: bool = False,
) -> None:
    """Write ``itvNum`` and the interval tuples.

    ``always`` forces the interval header even for degree-0 nodes, which the
    segmented layout needs because it has no leading ``degNum``.
    """
    if not always and form.degree == 0:
        return
    scheme.encode(writer, to_vlc_value(form.interval_count))
    min_len = config.min_interval_length
    length_shift = 0 if min_len == float("inf") else int(min_len)
    previous_end = node
    for index, interval in enumerate(form.intervals):
        if index == 0:
            gap = zigzag_encode(interval.start - node)
        else:
            gap = interval.start - previous_end - 1
        scheme.encode(writer, to_vlc_value(gap))
        scheme.encode(writer, to_vlc_value(interval.length - length_shift))
        previous_end = interval.end


def _encode_residual_run(
    writer: BitWriter,
    scheme: VLCScheme,
    node: int,
    residuals: Sequence[int],
) -> None:
    """Write a run of residual gaps (first relative to ``node``, zig-zagged)."""
    previous: int | None = None
    for index, residual in enumerate(residuals):
        if index == 0:
            gap = zigzag_encode(residual - node)
        else:
            assert previous is not None
            gap = residual - previous - 1
        scheme.encode(writer, to_vlc_value(gap))
        previous = residual


def _residual_run_bits(
    scheme: VLCScheme, node: int, residuals: Sequence[int]
) -> int:
    """Bits needed for ``resNum`` plus the gap encoding of ``residuals``."""
    probe = BitWriter()
    scheme.encode(probe, to_vlc_value(len(residuals)))
    _encode_residual_run(probe, scheme, node, residuals)
    return probe.bit_length


def _encode_segmented_residuals(
    writer: BitWriter,
    scheme: VLCScheme,
    config: CGRConfig,
    node: int,
    residuals: Sequence[int],
) -> None:
    """Write ``segNum`` followed by fixed-length residual segments (Figure 6)."""
    seg_bits = config.residual_segment_bits
    assert seg_bits is not None

    # Partition the residuals greedily into segments of at most ``seg_bits``
    # bits each; the final segment may be up to twice as long so that no
    # trailing fragment shorter than a segment is created.
    segments: list[list[int]] = []
    index = 0
    total = len(residuals)
    while index < total:
        remaining = residuals[index:]
        if _residual_run_bits(scheme, node, remaining) <= 2 * seg_bits:
            segments.append(list(remaining))
            index = total
            break
        chunk: list[int] = []
        while index < total:
            candidate = chunk + [residuals[index]]
            if chunk and _residual_run_bits(scheme, node, candidate) > seg_bits:
                break
            chunk = candidate
            index += 1
        segments.append(chunk)
    if not segments:
        segments = [[]]

    scheme.encode(writer, to_vlc_value(len(segments)))
    base = writer.bit_length
    for seg_index, segment in enumerate(segments):
        scheme.encode(writer, to_vlc_value(len(segment)))
        _encode_residual_run(writer, scheme, node, segment)
        is_last = seg_index == len(segments) - 1
        if not is_last:
            target = base + (seg_index + 1) * seg_bits
            writer.pad_to(target)


# ---------------------------------------------------------------------------
# Decoding internals
# ---------------------------------------------------------------------------

def _decode_intervals(
    reader: BitReader,
    scheme: VLCScheme,
    config: CGRConfig,
    node: int,
    layout: NodeLayout,
) -> None:
    """Decode ``itvNum`` and the interval tuples into ``layout``."""
    interval_count = from_vlc_value(scheme.decode(reader))
    min_len = config.min_interval_length
    length_shift = 0 if min_len == float("inf") else int(min_len)
    previous_end = node
    for index in range(interval_count):
        gap = from_vlc_value(scheme.decode(reader))
        if index == 0:
            start = node + zigzag_decode(gap)
        else:
            start = previous_end + gap + 1
        length = from_vlc_value(scheme.decode(reader)) + length_shift
        layout.intervals.append(Interval(start=start, length=length))
        previous_end = start + length - 1


def _decode_residual_run(
    reader: BitReader,
    scheme: VLCScheme,
    node: int,
    count: int,
    out: list[int],
) -> None:
    """Decode ``count`` residual gaps into absolute node ids appended to ``out``.

    One bulk :meth:`~repro.compression.vlc.VLCScheme.decode_run` call per run
    -- the whole run's codes are read with word-level scans/extracts -- then
    one :func:`~repro.compression.gaps.gap_decode_vlc_run` pass turns the raw
    codes into absolute ids.
    """
    if count <= 0:
        return
    out.extend(gap_decode_vlc_run(scheme.decode_run(reader, count), node))
