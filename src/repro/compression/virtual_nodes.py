"""Virtual-node compression (Buehrer & Chellapilla style).

The paper's evaluation applies virtual-node compression as a *preprocessing*
step on every dataset before measuring any approach (Section 7.2): frequent
sets of nodes that co-occur in many adjacency lists are replaced by a single
virtual node, so each such list stores one edge to the virtual node instead of
one edge per member.  All baselines then operate on the restructured graph, so
CGR's measured advantage is on top of virtual-node compression.

This implementation uses a simple frequent-pattern miner: it repeatedly finds
node *pairs* that co-occur in at least ``min_support`` adjacency lists, merges
the most frequent pair into a virtual node, and substitutes it everywhere.
Repeated merging grows virtual nodes into larger patterns, which is the
essence of the original heuristic while staying tractable in pure Python.

Traversal semantics are preserved by expansion: a traversal that reaches a
virtual node must continue to all of its members at zero extra depth.  The
:class:`VirtualNodeGraph` therefore records, for every virtual node, the list
of real nodes it stands for, and offers :meth:`expand_neighbors` which gives
back the original adjacency of any real node.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class VirtualNodeGraph:
    """Result of virtual-node compression.

    Attributes:
        num_real_nodes: number of nodes in the original graph.
        adjacency: restructured adjacency lists; indices ``>= num_real_nodes``
            are virtual nodes.
        virtual_members: for each virtual node (indexed from 0), the real or
            virtual nodes it replaces.
        original_edge_count: edge count before compression.
    """

    num_real_nodes: int
    adjacency: list[list[int]]
    virtual_members: list[list[int]] = field(default_factory=list)
    original_edge_count: int = 0

    @property
    def num_total_nodes(self) -> int:
        """Real plus virtual node count."""
        return len(self.adjacency)

    @property
    def num_virtual_nodes(self) -> int:
        """Number of virtual nodes introduced by the factorization."""
        return len(self.virtual_members)

    @property
    def compressed_edge_count(self) -> int:
        """Edges stored after factorization (real + virtual adjacency)."""
        return sum(len(neighbors) for neighbors in self.adjacency)

    @property
    def edge_reduction_ratio(self) -> float:
        """original edges / restructured edges (>= 1 means compression helped)."""
        compressed = self.compressed_edge_count
        if compressed == 0:
            return 1.0
        return self.original_edge_count / compressed

    def expand_virtual(self, node: int) -> list[int]:
        """Expand a node id into the real nodes it represents (recursively)."""
        if node < self.num_real_nodes:
            return [node]
        members = self.virtual_members[node - self.num_real_nodes]
        expanded: list[int] = []
        for member in members:
            expanded.extend(self.expand_virtual(member))
        return expanded

    def expand_neighbors(self, node: int) -> list[int]:
        """The original (fully expanded) adjacency list of a real node."""
        if node >= self.num_real_nodes:
            raise IndexError(f"node {node} is virtual; expand real nodes only")
        expanded: set[int] = set()
        for neighbor in self.adjacency[node]:
            expanded.update(self.expand_virtual(neighbor))
        return sorted(expanded)


class VirtualNodeCompressor:
    """Greedy frequent-pair miner producing a :class:`VirtualNodeGraph`."""

    def __init__(self, min_support: int = 3, max_rounds: int = 50) -> None:
        if min_support < 2:
            raise ValueError("min_support must be >= 2")
        self.min_support = min_support
        self.max_rounds = max_rounds

    def compress(self, adjacency: Sequence[Sequence[int]]) -> VirtualNodeGraph:
        """Run the miner over a graph given as sorted adjacency lists."""
        working = [sorted(set(neighbors)) for neighbors in adjacency]
        num_real = len(working)
        original_edges = sum(len(neighbors) for neighbors in working)
        virtual_members: list[list[int]] = []

        for _ in range(self.max_rounds):
            pair = self._most_frequent_pair(working)
            if pair is None:
                break
            (a, b), support = pair
            if support < self.min_support:
                break
            virtual_id = num_real + len(virtual_members)
            virtual_members.append([a, b])
            # The virtual node points at its members so traversal can expand it.
            working.append([a, b])
            for neighbors in working[:-1]:
                if _contains_both(neighbors, a, b):
                    replaced = [v for v in neighbors if v != a and v != b]
                    replaced.append(virtual_id)
                    replaced.sort()
                    neighbors[:] = replaced

        return VirtualNodeGraph(
            num_real_nodes=num_real,
            adjacency=working,
            virtual_members=virtual_members,
            original_edge_count=original_edges,
        )

    def _most_frequent_pair(
        self, adjacency: Sequence[Sequence[int]]
    ) -> tuple[tuple[int, int], int] | None:
        """Find the most frequent co-occurring neighbour pair.

        To stay near-linear, only adjacent elements of each sorted list are
        considered as candidate pairs; locality-friendly graphs (the ones
        virtual-node compression targets) concentrate their repetition there.
        """
        counts: Counter[tuple[int, int]] = Counter()
        for neighbors in adjacency:
            for i in range(len(neighbors) - 1):
                counts[(neighbors[i], neighbors[i + 1])] += 1
        if not counts:
            return None
        pair, support = counts.most_common(1)[0]
        return pair, support


def _contains_both(sorted_list: Sequence[int], a: int, b: int) -> bool:
    """True when both ``a`` and ``b`` occur in a sorted list."""
    return _binary_contains(sorted_list, a) and _binary_contains(sorted_list, b)


def _binary_contains(sorted_list: Sequence[int], value: int) -> bool:
    lo, hi = 0, len(sorted_list)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_list[mid] < value:
            lo = mid + 1
        elif sorted_list[mid] > value:
            hi = mid
        else:
            return True
    return False
