"""Residual-segmentation helpers (Section 5.2).

The segmentation itself is part of the CGR encoder
(:mod:`repro.compression.cgr`); this module provides the view of a node's
segments that the segmented traversal strategy and the benchmark harness
consume: where each segment starts in the bit stream, how many residuals it
holds, and how much space is wasted on padding (the compression-rate cost the
paper trades against parallelism in Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.cgr import CGRGraph


@dataclass(frozen=True)
class SegmentedResiduals:
    """Per-node segment map of a segmented CGR adjacency list."""

    node: int
    segment_bit_offsets: tuple[int, ...]
    segment_residual_counts: tuple[int, ...]
    segment_bits: int | None

    @property
    def segment_count(self) -> int:
        """Number of residual segments."""
        return len(self.segment_bit_offsets)

    @property
    def total_residuals(self) -> int:
        """Residuals summed over every segment."""
        return sum(self.segment_residual_counts)

    @classmethod
    def from_graph(cls, graph: CGRGraph, node: int) -> "SegmentedResiduals":
        """Build the segment map of ``node`` from a CGR graph.

        For unsegmented graphs the residual area is reported as a single
        pseudo-segment so callers can treat both layouts uniformly.
        """
        layout = graph.layout(node)
        if graph.config.residual_segment_bits is None:
            return cls(
                node=node,
                segment_bit_offsets=(int(graph.offsets[node]),),
                segment_residual_counts=(layout.residual_count,),
                segment_bits=None,
            )
        return cls(
            node=node,
            segment_bit_offsets=tuple(layout.segment_offsets),
            segment_residual_counts=tuple(layout.segment_counts),
            segment_bits=graph.config.residual_segment_bits,
        )


def padding_overhead_bits(graph: CGRGraph) -> int:
    """Total padding (blank) bits introduced by residual segmentation.

    Computed as the difference between the segmented encoding size and the
    size the same graph would need without segmentation, clamped at zero.
    Returns 0 for unsegmented graphs.
    """
    if graph.config.residual_segment_bits is None:
        return 0
    from dataclasses import replace

    unsegmented_config = replace(graph.config, residual_segment_bits=None)
    unsegmented = CGRGraph.from_adjacency(list(graph.iter_adjacency()), unsegmented_config)
    return max(0, graph.total_bits - unsegmented.total_bits)


def average_segments_per_node(graph: CGRGraph) -> float:
    """Mean number of residual segments per node (1.0 when unsegmented)."""
    if graph.num_nodes == 0:
        return 0.0
    total = 0
    for node in range(graph.num_nodes):
        total += max(1, SegmentedResiduals.from_graph(graph, node).segment_count)
    return total / graph.num_nodes
