"""The one-object telemetry bundle wired through the serving stack.

:class:`Telemetry` owns the three observability surfaces -- a
:class:`~repro.obs.MetricsRegistry`, a :class:`~repro.obs.Tracer` and a
:class:`~repro.obs.SlowQueryLog` -- so the service and front door take a
single optional ``telemetry=`` argument instead of three.  The default
(:meth:`Telemetry.disabled`) is a genuinely inert bundle: the tracer
answers every span request with the shared null span and the registry
only costs anything if someone scrapes it.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .export import json_snapshot, prometheus_text
from .metrics import MetricsRegistry
from .slowlog import SlowQueryLog
from .trace import Span, Tracer


class Telemetry:
    """Bundle of metrics registry, tracer and slow-query log.

    Args:
        enabled: master switch for tracing (metrics registration always
            works; callback-backed instruments cost nothing until read).
        sample_rate: fraction of requests whose span trees are recorded
            (head-based, deterministic; see :class:`~repro.obs.Tracer`).
        trace_capacity: finished span trees retained by the tracer.
        slow_threshold: root duration (seconds) admitting a trace into
            the slow-query log.
        slow_capacity: slow span trees retained.
        clock: monotonic time source for spans (injectable for tests).
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_rate: float = 1.0,
        trace_capacity: int = 256,
        slow_threshold: float = 0.25,
        slow_capacity: int = 32,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.slow_log = SlowQueryLog(
            threshold_seconds=slow_threshold, capacity=slow_capacity
        )
        self.tracer = Tracer(
            enabled=enabled,
            sample_rate=sample_rate,
            capacity=trace_capacity,
            clock=clock,
            slow_log=self.slow_log,
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """An inert bundle: no span is ever recorded or sampled."""
        return cls(enabled=False, sample_rate=0.0)

    @property
    def enabled(self) -> bool:
        """Whether the tracer records spans."""
        return self.tracer.enabled

    def trace(self, trace_id: str) -> Span | None:
        """The retained span tree for ``trace_id``, or ``None``."""
        return self.tracer.trace(trace_id)

    def prometheus(self) -> str:
        """The registry rendered in Prometheus text exposition format."""
        return prometheus_text(self.metrics)

    def snapshot(self) -> dict[str, Any]:
        """Metrics + retained traces + slow queries as one JSON document."""
        return json_snapshot(
            self.metrics, tracer=self.tracer, slow_log=self.slow_log
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(enabled={self.enabled}, "
            f"sample_rate={self.tracer.sample_rate}, "
            f"instruments={len(self.metrics)}, "
            f"traces={len(self.tracer)})"
        )


__all__ = ["Telemetry"]
