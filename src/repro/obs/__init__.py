"""Unified telemetry: request tracing, typed metrics, exporters.

The serving stack spans five layers (front door, traversal service,
shard executor, decode cache, views), and before this package each kept
its own disjoint counters.  :mod:`repro.obs` gives them one spine:

* :class:`Tracer` / :class:`Span` -- per-request span trees with a
  ``trace_id`` minted at front-door admission and threaded through
  tickets, audit events, MS-BFS coalescing, executor supersteps,
  decode-cache misses and view repairs; head-based sampling and a no-op
  path keep the disabled cost negligible.
* :class:`MetricsRegistry` with typed :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments -- the legacy stats
  objects register callback-backed instruments into it, so registry
  values and ``ServiceStats`` / ``ServerStats`` read the same sources.
* Exporters -- :func:`prometheus_text`, :func:`json_snapshot`, and a
  ring-buffered :class:`SlowQueryLog` of full span trees; see also
  ``scripts/dump_telemetry.py``.
* :class:`Telemetry` -- the one bundle object accepted by
  :class:`~repro.service.TraversalService` and
  :class:`~repro.server.FrontDoor` via ``telemetry=``.

The package depends only on the standard library and is imported by the
serving layers (never the reverse), so enabling telemetry is purely
additive.
"""

from .export import json_snapshot, prometheus_text
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
)
from .slowlog import SlowQueryLog
from .telemetry import Telemetry
from .trace import (
    MAX_SPAN_EVENTS,
    NOOP_TRACER,
    NULL_SPAN,
    NoopTracer,
    Span,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MAX_SPAN_EVENTS",
    "NOOP_TRACER",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "NoopTracer",
    "SlowQueryLog",
    "Span",
    "Telemetry",
    "Tracer",
    "json_snapshot",
    "prometheus_text",
]
