"""Request tracing: span trees, head-based sampling, a bounded trace store.

A :class:`Tracer` mints one ``trace_id`` per request and records the
request's lifecycle as a tree of :class:`Span` objects -- admission, queue
wait, execution supersteps, decode-cache misses, view repairs, response --
so one slow request can be explained stage by stage instead of inferred
from counters.  Three disciplines keep the tracer cheap enough to leave on
in a serving process:

* **Head-based sampling** -- the keep/drop decision is made once, when the
  trace id is minted, deterministically from the trace sequence number (so
  tests are reproducible and a 10% rate records exactly every tenth
  trace).  Unsampled requests still get a unique ``trace_id`` for audit
  correlation, but every span they open is a non-recording stub.
* **A no-op fast path when disabled** -- ``Tracer(enabled=False)`` (and
  the shared :data:`NOOP_TRACER`) answers every ``span()`` call with the
  shared :data:`NULL_SPAN` without allocating, so instrumented hot loops
  cost a method call and an attribute check.
* **Bounded memory** -- finished traces live in a ring of ``capacity``
  roots (oldest evicted first) and each span keeps at most
  :data:`MAX_SPAN_EVENTS` point events.

Clocks are injectable everywhere, following the repo-wide determinism
idiom: a test can drive span timings with a fake clock and assert exact
durations.  The active-span context is **thread-local**: entering a span
(``with tracer.span(...)``) makes it the parent of any span the same
thread opens deeper in the stack, which is how one front-door request's
execution span adopts the service's sweep spans and the shard executor's
superstep spans without explicit plumbing.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterator

#: Point events retained per span; later events only bump
#: ``dropped_events`` so a pathological request cannot balloon its trace.
MAX_SPAN_EVENTS = 64


class Span:
    """One timed operation inside a trace tree.

    Spans are created through :meth:`Tracer.start_trace` /
    :meth:`Tracer.span` / :meth:`child`, never directly.  A span records a
    start/end time on its tracer's clock, free-form ``attributes``, bounded
    point ``events`` and child spans.  Used as a context manager it also
    becomes the calling thread's *current* span, so nested instrumentation
    attaches below it; :meth:`finish` alone just closes the span (the idiom
    for spans that end on a different thread, like queue-wait spans).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start", "end",
        "attributes", "events", "children", "status", "dropped_events",
        "_tracer",
    )

    #: Recording spans belong to a sampled trace.
    sampled = True
    #: Whether annotations/events on this span are retained.
    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.events: list[dict[str, Any]] = []
        self.children: list["Span"] = []
        self.status = "ok"
        self.dropped_events = 0

    # -- recording -------------------------------------------------------------

    def child(self, name: str, **attributes: Any) -> "Span":
        """Open a child span starting now; the caller closes it."""
        return self._tracer._child(self, name, attributes)

    def annotate(self, **attributes: Any) -> None:
        """Merge key/value attributes into the span."""
        self.attributes.update(attributes)

    def event(self, name: str, **detail: Any) -> None:
        """Record one timestamped point event (bounded per span).

        Beyond :data:`MAX_SPAN_EVENTS` the event is dropped and counted in
        :attr:`dropped_events` instead -- decode-miss storms must not grow
        a span without bound.
        """
        if len(self.events) >= MAX_SPAN_EVENTS:
            self.dropped_events += 1
            return
        self.events.append(
            {"name": name, "at": self._tracer.clock(), "detail": detail}
        )

    def finish(self, status: str | None = None) -> None:
        """Close the span (idempotent); finishing a root stores the trace."""
        if self.end is not None:
            return
        self.end = self._tracer.clock()
        if status is not None:
            self.status = status
        if self.parent_id is None:
            self._tracer._store(self)

    # -- context management ----------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)
        if exc_type is not None and self.status == "ok":
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        self.finish()

    # -- introspection ---------------------------------------------------------

    @property
    def ended(self) -> bool:
        """Whether :meth:`finish` has run."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end (to *now* while still open)."""
        end = self.end if self.end is not None else self._tracer.clock()
        return max(0.0, end - self.start)

    def walk(self) -> Iterator["Span"]:
        """This span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first span named ``name`` in :meth:`walk` order, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def spans_named(self, name: str) -> list["Span"]:
        """Every span named ``name`` in the tree, :meth:`walk` order."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready recursive rendering of the span tree."""
        document: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "status": self.status,
            "start": self.start,
            "end": self.end,
            "duration": self.duration if self.end is not None else None,
        }
        if self.attributes:
            document["attributes"] = dict(self.attributes)
        if self.events:
            document["events"] = [dict(event) for event in self.events]
        if self.dropped_events:
            document["dropped_events"] = self.dropped_events
        if self.children:
            document["children"] = [
                child.to_dict() for child in self.children
            ]
        return document

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.ended else "open"
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"status={self.status}, {state}, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """A non-recording span stub that still carries its trace id.

    Returned for unsampled traces and by disabled tracers: every recording
    method is a no-op, children are further stubs, and entering one as a
    context manager still occupies the thread's current-span slot (when it
    has an owning tracer) so deeper layers inherit the not-sampled decision
    instead of opening orphan roots.  :data:`NULL_SPAN` is the shared,
    tracer-less instance.
    """

    __slots__ = ("trace_id", "_tracer")

    sampled = False
    recording = False
    name = ""
    span_id = 0
    parent_id: int | None = None
    start = 0.0
    end: float | None = 0.0
    status = "unsampled"
    dropped_events = 0
    ended = True
    duration = 0.0
    attributes: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    children: list["Span"] = []

    def __init__(self, trace_id: str, tracer: "Tracer | None") -> None:
        self.trace_id = trace_id
        self._tracer = tracer

    def child(self, name: str, **attributes: Any) -> "_NullSpan":
        """Another non-recording stub on the same (unsampled) trace."""
        if self._tracer is None:
            return NULL_SPAN
        return _NullSpan(self.trace_id, self._tracer)

    def annotate(self, **attributes: Any) -> None:
        """No-op."""

    def event(self, name: str, **detail: Any) -> None:
        """No-op."""

    def finish(self, status: str | None = None) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._tracer is not None:
            self._tracer._pop(self)

    def walk(self) -> Iterator["Span"]:
        """Empty: nothing was recorded."""
        return iter(())

    def find(self, name: str) -> None:
        """Always ``None``: nothing was recorded."""
        return None

    def spans_named(self, name: str) -> list["Span"]:
        """Always empty: nothing was recorded."""
        return []

    def to_dict(self) -> dict[str, Any]:
        """A minimal stub rendering (unsampled traces keep no detail)."""
        return {"trace_id": self.trace_id, "status": "unsampled"}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NullSpan(trace={self.trace_id or '<none>'})"


#: The shared do-nothing span: safe to enter, annotate and finish.
NULL_SPAN = _NullSpan("", None)


class NoopTracer:
    """The tracer-shaped null object: records nothing, allocates nothing.

    :data:`NOOP_TRACER` is the default ``tracer`` attribute of
    instrumented components (:class:`~repro.shard.ShardExecutor`,
    :class:`~repro.views.ViewManager`) so standalone use -- outside any
    :class:`~repro.obs.Telemetry`-wired service -- pays one attribute read
    and a method call per would-be span.
    """

    #: Mirrors :attr:`Tracer.enabled` for duck-typed fast-path checks.
    enabled = False

    def start_trace(self, name: str, **attributes: Any) -> _NullSpan:
        """Always :data:`NULL_SPAN` (no ids are minted)."""
        return NULL_SPAN

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """Always :data:`NULL_SPAN`."""
        return NULL_SPAN

    def current(self) -> None:
        """Always ``None``: there is never an active span."""
        return None

    def trace(self, trace_id: str) -> None:
        """Always ``None``: no traces are stored."""
        return None

    def traces(self) -> list[Span]:
        """Always empty."""
        return []


#: The shared do-nothing tracer.
NOOP_TRACER = NoopTracer()


class Tracer:
    """Mints trace ids, builds span trees, stores finished traces.

    Args:
        enabled: when ``False`` the tracer still mints unique trace ids
            (audit correlation stays intact) but records no spans.
        sample_rate: fraction of traces recorded, in ``[0, 1]``; the
            keep/drop decision is deterministic in the trace sequence
            number (head-based sampling), so a rate of ``0.1`` keeps
            exactly every tenth trace.
        capacity: finished root spans retained, oldest evicted first.
        clock: monotonic time source for every span (injectable).
        slow_log: optional :class:`~repro.obs.SlowQueryLog` offered every
            finished sampled root.
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_rate: float = 1.0,
        capacity: int = 256,
        clock: Callable[[], float] = time.perf_counter,
        slow_log=None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.capacity = capacity
        self.clock = clock
        self.slow_log = slow_log
        #: Finished sampled traces ever stored (ring evictions included).
        self.completed = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._finished: OrderedDict[str, Span] = OrderedDict()
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span creation ---------------------------------------------------------

    def start_trace(self, name: str, **attributes: Any) -> Span | _NullSpan:
        """Mint a fresh trace id and open its root span.

        Returns a recording :class:`Span` when the trace is sampled, else
        a non-recording stub that still carries the minted ``trace_id`` --
        every caller gets a unique id either way, which is what the front
        door threads through tickets and audit events.
        """
        seq = next(self._trace_ids)
        trace_id = f"t-{seq:08d}"
        if not self._keeps(seq):
            return _NullSpan(trace_id, self)
        return Span(
            self, name, trace_id, next(self._span_ids), None,
            self.clock(), dict(attributes),
        )

    def span(self, name: str, **attributes: Any) -> Span | _NullSpan:
        """A span below the thread's current span, or a new sampled root.

        The instrumentation entry point for the layers *below* the front
        door: inside a traced request the new span nests under whatever
        span the calling thread has active (recording or not); with no
        active span it starts a trace of its own -- so direct
        ``service.submit`` calls are traced too -- and a disabled tracer
        answers with :data:`NULL_SPAN` without allocating.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self.current()
        if parent is not None:
            return parent.child(name, **attributes)
        return self.start_trace(name, **attributes)

    def _child(
        self, parent: Span, name: str, attributes: dict[str, Any]
    ) -> Span:
        """Create and attach a recording child of ``parent``."""
        span = Span(
            self, name, parent.trace_id, next(self._span_ids),
            parent.span_id, self.clock(), attributes,
        )
        parent.children.append(span)
        return span

    def _keeps(self, seq: int) -> bool:
        """Deterministic head-sampling decision for trace number ``seq``."""
        if not self.enabled:
            return False
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return int(seq * rate) > int((seq - 1) * rate)

    # -- current-span context --------------------------------------------------

    def current(self) -> "Span | _NullSpan | None":
        """The calling thread's innermost active span, or ``None``."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    def _push(self, span) -> None:
        """Make ``span`` the calling thread's current span."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span) -> None:
        """Retire ``span`` from the calling thread's stack (defensively)."""
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    # -- finished-trace store --------------------------------------------------

    def _store(self, root: Span) -> None:
        """Ring-store a finished root and offer it to the slow-query log."""
        with self._lock:
            self.completed += 1
            self._finished[root.trace_id] = root
            while len(self._finished) > self.capacity:
                self._finished.popitem(last=False)
        slow_log = self.slow_log
        if slow_log is not None:
            slow_log.offer(root)

    def trace(self, trace_id: str) -> Span | None:
        """The finished trace's root span, or ``None`` (unsampled/evicted)."""
        with self._lock:
            return self._finished.get(trace_id)

    def traces(self) -> list[Span]:
        """Retained finished traces, oldest first."""
        with self._lock:
            return list(self._finished.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


__all__ = [
    "MAX_SPAN_EVENTS",
    "NOOP_TRACER",
    "NULL_SPAN",
    "NoopTracer",
    "Span",
    "Tracer",
]
