"""Exporters: Prometheus text format and JSON telemetry snapshots.

Rendering is separated from collection so one registry can serve both a
scrape endpoint and an offline dump: :func:`prometheus_text` emits the
Prometheus 0.0.4 text exposition format (``# HELP`` / ``# TYPE`` lines,
escaped label values, cumulative ``_bucket{le=...}`` series for
histograms), while :func:`json_snapshot` bundles the same samples with
retained traces and the slow-query log into one JSON-ready document --
the payload behind ``scripts/dump_telemetry.py``.
"""

from __future__ import annotations

import math
from typing import Any


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_block(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges emit one sample line per labelset; histograms
    emit cumulative ``_bucket`` series (with the implicit ``+Inf``
    bucket) plus ``_sum`` and ``_count``.  Output order follows
    ``registry.collect()`` -- sorted by metric name, then label values --
    so scrapes are deterministic and diffable.
    """
    lines: list[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                for bound, count in sample["buckets"]:
                    le = bound if bound == "+Inf" else _format_value(bound)
                    block = _label_block(labels, f'le="{le}"')
                    lines.append(f"{name}_bucket{block} {count}")
                block = _label_block(labels)
                lines.append(
                    f"{name}_sum{block} {_format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{block} {sample['count']}")
            else:
                block = _label_block(labels)
                lines.append(
                    f"{name}{block} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(registry, tracer=None, slow_log=None) -> dict[str, Any]:
    """One JSON-ready document: metrics, retained traces, slow queries.

    ``tracer`` and ``slow_log`` are optional so a metrics-only registry
    can still be dumped; when present, traces are rendered as recursive
    span-tree dicts (``Span.to_dict``).
    """
    document: dict[str, Any] = {"metrics": registry.collect()}
    if tracer is not None:
        document["traces"] = [root.to_dict() for root in tracer.traces()]
        document["traces_completed"] = tracer.completed
    if slow_log is not None:
        document["slow_queries"] = slow_log.as_dicts()
        document["slow_queries_admitted"] = slow_log.admitted
    return document


__all__ = ["json_snapshot", "prometheus_text"]
