"""Typed metric instruments and the registry that collects them.

Every layer of the serving stack keeps counters -- ``ServiceStats``,
``ServerStats``, per-tenant SLA reservoirs, view stats -- but each rolls
its own snapshot dataclass and none is machine-readable.  This module
gives them one vocabulary: a :class:`MetricsRegistry` of named, typed
instruments (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) with
Prometheus-style label sets, which the exporters in
:mod:`repro.obs.export` render as a text scrape or a JSON snapshot.

Two registration styles are supported:

* **Direct** -- hot paths call ``counter.inc()`` / ``histogram.observe()``
  themselves (the front door's request-latency histogram works this way).
* **Callback-backed** -- :meth:`Counter.set_function` /
  :meth:`Gauge.set_function` bind a labelset to a zero-argument callable
  that is evaluated at *collection* time.  This is how the legacy stats
  objects "register into" the registry without double counting: the
  registry reads the very same live counters that ``ServiceStats`` /
  ``ServerStats`` snapshot, so the two surfaces cannot drift and the
  steady-state cost is zero (nothing runs until someone scrapes).

Instrument and label names follow the Prometheus data model
(``[a-zA-Z_:][a-zA-Z0-9_:]*`` for metric names); re-registering the same
name with the same type and label names returns the existing instrument,
while a conflicting re-registration raises, so independently wired
components can safely share one registry.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any, Callable, Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds, in seconds -- spans the
#: sub-millisecond decode path up to multi-second overloaded requests.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _validate_labels(label_names: Iterable[str]) -> tuple[str, ...]:
    names = tuple(label_names)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


class Instrument:
    """Base class for all instruments: a name, help text, label names.

    Each concrete instrument keeps one slot of state per distinct label
    *value* tuple; an unlabelled instrument has exactly one slot (the
    empty tuple).  Subclasses store either plain values or zero-argument
    callables resolved at collection time.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: tuple[str, ...]
    ) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_names = _validate_labels(label_names)
        self._lock = threading.Lock()
        self._slots: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        """Validate a label kwargs dict against the declared label names."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labelled(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.label_names, key))

    def samples(self) -> list[dict[str, Any]]:
        """Collection-time samples: ``{"labels": {...}, "value": float}``.

        Callback-backed slots are resolved *outside* the instrument lock
        (callables may acquire other locks, e.g. a reservoir's); output is
        sorted by label values for deterministic export.
        """
        with self._lock:
            slots = list(self._slots.items())
        rendered = []
        for key, value in sorted(slots):
            if callable(value):
                value = float(value())
            rendered.append(
                {"labels": self._labelled(key), "value": float(value)}
            )
        return rendered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"labels={self.label_names!r}, slots={len(self._slots)})"
        )


class Counter(Instrument):
    """A monotonically increasing total (or a callback reading one).

    A labelset is either *owned* (driven by :meth:`inc`) or
    *callback-backed* (bound once via :meth:`set_function` to a live
    source such as ``lambda: counters.admitted``); mixing the two styles
    on one labelset raises, because a callback would silently shadow
    increments.
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to the labelset's running total."""
        if amount < 0:
            raise ValueError(f"{self.name}: counter increment < 0: {amount}")
        key = self._key(labels)
        with self._lock:
            current = self._slots.get(key, 0.0)
            if callable(current):
                raise ValueError(
                    f"{self.name}{key}: labelset is callback-backed; "
                    "cannot inc() it"
                )
            self._slots[key] = current + amount

    def set_function(
        self, source: Callable[[], float], **labels: Any
    ) -> None:
        """Bind the labelset to a callable read at collection time."""
        key = self._key(labels)
        with self._lock:
            self._slots[key] = source

    def value(self, **labels: Any) -> float:
        """The labelset's current total (resolving a callback if bound)."""
        key = self._key(labels)
        with self._lock:
            current = self._slots.get(key, 0.0)
        return float(current()) if callable(current) else float(current)


class Gauge(Instrument):
    """A value that can go up and down (queue depth, token-bucket level)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelset to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._slots[key] = float(value)

    def set_function(
        self, source: Callable[[], float], **labels: Any
    ) -> None:
        """Bind the labelset to a callable read at collection time."""
        key = self._key(labels)
        with self._lock:
            self._slots[key] = source

    def value(self, **labels: Any) -> float:
        """The labelset's current value (resolving a callback if bound)."""
        key = self._key(labels)
        with self._lock:
            current = self._slots.get(key, 0.0)
        return float(current()) if callable(current) else float(current)


class Histogram(Instrument):
    """A cumulative-bucket distribution (Prometheus ``histogram`` type).

    Each labelset keeps per-bucket counts plus a running sum and count;
    :meth:`samples` renders cumulative bucket counts with their ``le``
    upper bounds plus the implicit ``+Inf`` bucket, ready for the
    text-format exporter.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelset's distribution."""
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._slots.get(key)
            if state is None:
                state = self._slots[key] = [
                    [0] * len(self.buckets), 0.0, 0,
                ]
            counts, _, _ = state
            if index < len(counts):
                counts[index] += 1
            state[1] += value
            state[2] += 1

    def count(self, **labels: Any) -> int:
        """Observations recorded for the labelset."""
        key = self._key(labels)
        with self._lock:
            state = self._slots.get(key)
            return 0 if state is None else int(state[2])

    def sum(self, **labels: Any) -> float:
        """Sum of observations recorded for the labelset."""
        key = self._key(labels)
        with self._lock:
            state = self._slots.get(key)
            return 0.0 if state is None else float(state[1])

    def samples(self) -> list[dict[str, Any]]:
        """Per-labelset distributions with cumulative bucket counts."""
        with self._lock:
            slots = [
                (key, [list(state[0]), state[1], state[2]])
                for key, state in self._slots.items()
            ]
        rendered = []
        for key, (counts, total, n) in sorted(slots):
            cumulative, running = [], 0
            for bound, count in zip(self.buckets, counts):
                running += count
                cumulative.append((bound, running))
            cumulative.append(("+Inf", n))
            rendered.append({
                "labels": self._labelled(key),
                "count": n,
                "sum": total,
                "buckets": cumulative,
            })
        return rendered


class MetricsRegistry:
    """The named collection of instruments one process exports.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name with the same type and label names returns the
    existing instrument (so the service and the front door can both bind
    into a shared registry idempotently); a type or label mismatch raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    def _register(self, cls, name, help, label_names, **extra) -> Instrument:
        label_names = _validate_labels(label_names)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.label_names != label_names
                ):
                    raise ValueError(
                        f"{name}: already registered as "
                        f"{type(existing).__name__}"
                        f"{existing.label_names} "
                        f"(asked for {cls.__name__}{label_names})"
                    )
                return existing
            instrument = cls(name, help, label_names, **extra)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._register(Counter, name, help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._register(Gauge, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._register(
            Histogram, name, help, tuple(labels), buckets=buckets
        )

    def get(self, name: str) -> Instrument | None:
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def collect(self) -> list[dict[str, Any]]:
        """Resolve every instrument into an export-ready document list.

        Each entry is ``{"name", "kind", "help", "labels", "samples"}``,
        sorted by name; callback-backed slots are evaluated here, which
        is the only time they cost anything.
        """
        with self._lock:
            instruments = sorted(
                self._instruments.values(), key=lambda i: i.name
            )
        return [
            {
                "name": instrument.name,
                "kind": instrument.kind,
                "help": instrument.help,
                "labels": list(instrument.label_names),
                "samples": instrument.samples(),
            }
            for instrument in instruments
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
]
