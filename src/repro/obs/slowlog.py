"""A ring-buffered slow-query log of full span trees.

The tracer offers every finished sampled root span to the slow-query
log; the log keeps the span *trees* (not summaries) of the most recent
requests whose end-to-end duration crossed a threshold, so "why was that
request slow" can be answered from the retained supersteps, decode-miss
events and queue-wait spans rather than from aggregate percentiles.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any


class SlowQueryLog:
    """Retain the span trees of recent slower-than-threshold requests.

    Args:
        threshold_seconds: minimum root-span duration to admit.
        capacity: trees retained; the oldest is evicted first.
    """

    def __init__(
        self, threshold_seconds: float = 0.25, capacity: int = 32
    ) -> None:
        if threshold_seconds < 0:
            raise ValueError(
                f"threshold_seconds must be >= 0, got {threshold_seconds}"
            )
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        #: Finished roots ever offered (admitted or not).
        self.observed = 0
        #: Roots that crossed the threshold (ring evictions included).
        self.admitted = 0
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def offer(self, root) -> bool:
        """Admit ``root`` if its duration crosses the threshold."""
        with self._lock:
            self.observed += 1
            if root.duration < self.threshold_seconds:
                return False
            self.admitted += 1
            self._entries.append(root)
            return True

    def entries(self) -> list:
        """Retained slow roots, oldest first."""
        with self._lock:
            return list(self._entries)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Retained slow span trees rendered via ``Span.to_dict``."""
        return [root.to_dict() for root in self.entries()]

    def clear(self) -> None:
        """Drop retained entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlowQueryLog(threshold={self.threshold_seconds}, "
            f"retained={len(self)}, admitted={self.admitted}, "
            f"observed={self.observed})"
        )


__all__ = ["SlowQueryLog"]
