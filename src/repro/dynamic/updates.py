"""Edge-update vocabulary of the dynamic-graph subsystem.

A live graph mutates between queries as a stream of edge insertions and
deletions.  This module defines the wire format of that stream --
:class:`EdgeUpdate` -- together with the bookkeeping record every layer that
absorbs a batch reports back (:class:`UpdateStats`) and small helpers to
coerce user-friendly tuples and to mirror a batch for undirected graphs.

The module deliberately imports nothing from the rest of the library so that
low-level layers (:class:`repro.graph.graph.Graph`) and high-level layers
(:class:`repro.service.TraversalService`) can both speak it without import
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Update kinds.  ``INSERT`` adds a directed edge, ``DELETE`` tombstones one.
INSERT = "insert"
DELETE = "delete"

_KINDS = (INSERT, DELETE)


@dataclass(frozen=True)
class EdgeUpdate:
    """One directed edge mutation: insert or delete ``source -> target``.

    Attributes:
        kind: either :data:`INSERT` or :data:`DELETE`.
        source: id of the edge's source node (non-negative).
        target: id of the edge's target node (non-negative).

    Updates are value objects; a batch is any sequence of them, applied in
    order.  Self-loops are rejected at application time (the datasets the
    paper evaluates are preprocessed to drop them), not at construction, so a
    batch recorded from an external feed can still be represented.
    """

    kind: str
    source: int
    target: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.source < 0 or self.target < 0:
            raise ValueError(
                f"node ids must be non-negative, got ({self.source}, {self.target})"
            )

    @classmethod
    def insert(cls, source: int, target: int) -> "EdgeUpdate":
        """An insertion of the directed edge ``source -> target``."""
        return cls(INSERT, source, target)

    @classmethod
    def delete(cls, source: int, target: int) -> "EdgeUpdate":
        """A deletion (tombstone) of the directed edge ``source -> target``."""
        return cls(DELETE, source, target)

    @property
    def reversed(self) -> "EdgeUpdate":
        """The same mutation applied to the opposite edge direction."""
        return EdgeUpdate(self.kind, self.target, self.source)


def insert_edge(source: int, target: int) -> EdgeUpdate:
    """Shorthand for :meth:`EdgeUpdate.insert`."""
    return EdgeUpdate.insert(source, target)


def delete_edge(source: int, target: int) -> EdgeUpdate:
    """Shorthand for :meth:`EdgeUpdate.delete`."""
    return EdgeUpdate.delete(source, target)


def coerce_updates(updates: Iterable) -> list[EdgeUpdate]:
    """Normalise a batch into :class:`EdgeUpdate` objects.

    Accepts :class:`EdgeUpdate` instances and ``(kind, source, target)``
    triples (kind being ``"insert"``/``"delete"``), so callers can write
    batches as plain tuples.  Returns a new list; order is preserved.
    """
    result: list[EdgeUpdate] = []
    for update in updates:
        if isinstance(update, EdgeUpdate):
            result.append(update)
        else:
            kind, source, target = update
            result.append(EdgeUpdate(str(kind), int(source), int(target)))
    return result


def symmetrized(updates: Iterable) -> list[EdgeUpdate]:
    """Both-direction expansion of a batch, for symmetric (undirected) graphs.

    Every update is emitted twice, once per direction, preserving batch
    order.  Use this when feeding a batch straight into an overlay that holds
    an undirected graph; :meth:`repro.service.GraphRegistry.apply_updates`
    performs the more careful variant that respects reverse directed edges.
    """
    result: list[EdgeUpdate] = []
    for update in coerce_updates(updates):
        result.append(update)
        if update.source != update.target:
            result.append(update.reversed)
    return result


@dataclass
class UpdateStats:
    """What applying one batch actually did.

    Attributes:
        inserted: edges added (after no-op normalisation).
        deleted: edges removed (after no-op normalisation).
        ignored: updates that changed nothing -- duplicate inserts, deletes
            of absent edges, and self-loops.
        compactions: nodes whose delta was folded back into CGR form by the
            compaction policy while absorbing this batch.
        touched_nodes: source nodes whose adjacency changed (these are the
            nodes whose cached decode plans must be invalidated).
        applied: the effective updates, in order -- the subset of the batch
            that changed the edge set.  Consumers use it to mirror a batch
            precisely (e.g. onto an undirected sibling).
    """

    inserted: int = 0
    deleted: int = 0
    ignored: int = 0
    compactions: int = 0
    touched_nodes: set[int] = field(default_factory=set)
    applied: list[EdgeUpdate] = field(default_factory=list)

    @property
    def changed(self) -> int:
        """Total number of effective mutations (inserted + deleted)."""
        return self.inserted + self.deleted

    def merge(self, other: "UpdateStats") -> None:
        """Fold another stats record into this one (for multi-entry fan-out)."""
        self.inserted += other.inserted
        self.deleted += other.deleted
        self.ignored += other.ignored
        self.compactions += other.compactions
        self.touched_nodes |= other.touched_nodes
        self.applied.extend(other.applied)


__all__ = [
    "DELETE",
    "EdgeUpdate",
    "INSERT",
    "UpdateStats",
    "coerce_updates",
    "delete_edge",
    "insert_edge",
    "symmetrized",
]
