"""Edge-update vocabulary of the dynamic-graph subsystem.

A live graph mutates between queries as a stream of edge insertions and
deletions.  This module defines the wire format of that stream --
:class:`EdgeUpdate` -- together with the bookkeeping record every layer that
absorbs a batch reports back (:class:`UpdateStats`) and small helpers to
coerce user-friendly tuples and to mirror a batch for undirected graphs.

The module deliberately imports nothing from the rest of the library so that
low-level layers (:class:`repro.graph.graph.Graph`) and high-level layers
(:class:`repro.service.TraversalService`) can both speak it without import
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Update kinds.  ``INSERT`` adds a directed edge, ``DELETE`` tombstones one.
INSERT = "insert"
DELETE = "delete"

_KINDS = (INSERT, DELETE)


@dataclass(frozen=True)
class EdgeUpdate:
    """One directed edge mutation: insert or delete ``source -> target``.

    Attributes:
        kind: either :data:`INSERT` or :data:`DELETE`.
        source: id of the edge's source node (non-negative).
        target: id of the edge's target node (non-negative).

    Updates are value objects; a batch is any sequence of them, applied in
    order.  Self-loops are rejected at application time (the datasets the
    paper evaluates are preprocessed to drop them), not at construction, so a
    batch recorded from an external feed can still be represented.
    """

    kind: str
    source: int
    target: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.source < 0 or self.target < 0:
            raise ValueError(
                f"node ids must be non-negative, got ({self.source}, {self.target})"
            )

    @classmethod
    def insert(cls, source: int, target: int) -> "EdgeUpdate":
        """An insertion of the directed edge ``source -> target``."""
        return cls(INSERT, source, target)

    @classmethod
    def delete(cls, source: int, target: int) -> "EdgeUpdate":
        """A deletion (tombstone) of the directed edge ``source -> target``."""
        return cls(DELETE, source, target)

    @property
    def reversed(self) -> "EdgeUpdate":
        """The same mutation applied to the opposite edge direction."""
        return EdgeUpdate(self.kind, self.target, self.source)


def insert_edge(source: int, target: int) -> EdgeUpdate:
    """Shorthand for :meth:`EdgeUpdate.insert`."""
    return EdgeUpdate.insert(source, target)


def delete_edge(source: int, target: int) -> EdgeUpdate:
    """Shorthand for :meth:`EdgeUpdate.delete`."""
    return EdgeUpdate.delete(source, target)


def coerce_updates(updates: Iterable) -> list[EdgeUpdate]:
    """Normalise a batch into :class:`EdgeUpdate` objects.

    Accepts :class:`EdgeUpdate` instances and ``(kind, source, target)``
    triples (kind being ``"insert"``/``"delete"``), so callers can write
    batches as plain tuples.  Returns a new list; order is preserved.
    """
    result: list[EdgeUpdate] = []
    for update in updates:
        if isinstance(update, EdgeUpdate):
            result.append(update)
        else:
            kind, source, target = update
            result.append(EdgeUpdate(str(kind), int(source), int(target)))
    return result


def symmetrized(updates: Iterable) -> list[EdgeUpdate]:
    """Both-direction expansion of a batch, for symmetric (undirected) graphs.

    Every update is emitted twice, once per direction, preserving batch
    order.  Use this when feeding a batch straight into an overlay that holds
    an undirected graph; :meth:`repro.service.GraphRegistry.apply_updates`
    performs the more careful variant that respects reverse directed edges.
    """
    result: list[EdgeUpdate] = []
    for update in coerce_updates(updates):
        result.append(update)
        if update.source != update.target:
            result.append(update.reversed)
    return result


@dataclass(frozen=True)
class DeltaRecord:
    """One applied update batch, as broadcast to delta-stream subscribers.

    :meth:`repro.service.GraphRegistry.apply_updates` emits one record per
    *effective* batch (a batch that changed nothing -- empty, or all no-ops --
    emits no record at all), after every resident entry absorbed it.
    Incremental consumers (the materialized views of :mod:`repro.views`, and
    eventually CDC followers) repair their state from the record instead of
    recomputing from the graph.

    Attributes:
        name: the registered graph name the batch was applied to.
        epoch: the graph's logical update epoch after this batch -- the
            count of effective batches ever applied to the name.  Unlike the
            overlay epoch it never moves on compaction, so it measures
            *logical* staleness.
        graph_epoch: the representative entry's overlay/executor epoch after
            the batch (compactions included), for correlation with
            :attr:`~repro.service.queries.QueryMetrics.graph_epoch`.
        applied: the effective directed updates, in application order.
        mirror_applied: the same batch translated for the undirected
            interpretation (both directions materialised on insert; a delete
            emitted only when neither direction survives) -- what CC-style
            consumers repair from.
        touched_nodes: source nodes whose directed adjacency changed.
    """

    name: str
    epoch: int
    graph_epoch: int
    applied: tuple[EdgeUpdate, ...]
    mirror_applied: tuple[EdgeUpdate, ...]
    touched_nodes: frozenset[int]

    @classmethod
    def coalesce(cls, records: "Sequence[DeltaRecord]") -> "DeltaRecord":
        """Fold consecutive records of one graph into a single span record.

        Lazy consumers that queued several epochs of deltas must apply them
        against the graph's *current* adjacency -- replaying the records one
        by one would pair each record's old-state derivation with the wrong
        (final) topology.  Concatenating the applied streams in epoch order
        preserves the per-pair op ordering that net-change derivation relies
        on (first op kind reveals the pre-span state, last op kind the
        post-span state), so the coalesced record describes the whole span
        exactly as one big eagerly-applied batch would.
        """
        if not records:
            raise ValueError("cannot coalesce an empty record sequence")
        names = {record.name for record in records}
        if len(names) != 1:
            raise ValueError(
                f"cannot coalesce records of different graphs: {sorted(names)}"
            )
        if len(records) == 1:
            return records[0]
        last = records[-1]
        touched: set[int] = set()
        for record in records:
            touched.update(record.touched_nodes)
        return cls(
            name=last.name,
            epoch=last.epoch,
            graph_epoch=last.graph_epoch,
            applied=tuple(
                update for record in records for update in record.applied
            ),
            mirror_applied=tuple(
                update for record in records for update in record.mirror_applied
            ),
            touched_nodes=frozenset(touched),
        )


@dataclass
class UpdateStats:
    """What applying one batch actually did.

    Attributes:
        inserted: edges added (after no-op normalisation).
        deleted: edges removed (after no-op normalisation).
        ignored: updates that changed nothing -- duplicate inserts, deletes
            of absent edges, and self-loops.
        compactions: nodes whose delta was folded back into CGR form by the
            compaction policy while absorbing this batch.
        touched_nodes: source nodes whose adjacency changed (these are the
            nodes whose cached decode plans must be invalidated).
        applied: the effective updates, in order -- the subset of the batch
            that changed the edge set.  Consumers use it to mirror a batch
            precisely (e.g. onto an undirected sibling).
    """

    inserted: int = 0
    deleted: int = 0
    ignored: int = 0
    compactions: int = 0
    touched_nodes: set[int] = field(default_factory=set)
    applied: list[EdgeUpdate] = field(default_factory=list)

    @property
    def changed(self) -> int:
        """Total number of effective mutations (inserted + deleted)."""
        return self.inserted + self.deleted

    def merge(self, other: "UpdateStats") -> None:
        """Fold another stats record into this one (for multi-entry fan-out)."""
        self.inserted += other.inserted
        self.deleted += other.deleted
        self.ignored += other.ignored
        self.compactions += other.compactions
        self.touched_nodes |= other.touched_nodes
        self.applied.extend(other.applied)


__all__ = [
    "DELETE",
    "DeltaRecord",
    "EdgeUpdate",
    "INSERT",
    "UpdateStats",
    "coerce_updates",
    "delete_edge",
    "insert_edge",
    "symmetrized",
]
