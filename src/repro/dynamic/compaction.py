"""When to fold a node's update delta back into compressed form.

A delta overlay answers reads by merging three sources per node: the frozen
CGR extent, the insert log and the tombstone set.  Every tombstone still
costs decode work (the dead neighbour is decoded, then suppressed at the
filtering step) and every insert is served from a side log that compresses
worse than interval/residual form.  Compaction pays one per-node re-encode to
collapse all three back into a single CGR extent -- the incremental analogue
of the paper's encode step, amortised so that no whole-graph rebuild ever
happens.

:class:`CompactionPolicy` decides *when* that trade is worth it, from two
signals: the absolute delta size and the delta's size relative to the node's
current extent degree.  The mechanism itself (re-encoding into the overlay's
side stream) lives in :class:`repro.dynamic.overlay.DeltaOverlay`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompactionPolicy:
    """Per-node trigger for folding a delta back into CGR form.

    A node is compacted as soon as its delta size (inserts + tombstones)
    reaches ``max(min_delta, degree_fraction * extent_degree)``.  The
    absolute floor keeps low-degree nodes from compacting on every single
    update; the fractional term keeps high-degree hubs from accumulating
    deltas that dwarf their compressed form.

    Attributes:
        min_delta: smallest delta size that can ever trigger compaction.
        degree_fraction: delta size relative to the node's extent degree
            that triggers compaction for high-degree nodes.
        rebase_garbage_fraction: fraction of an overlay's total bits that
            may be garbage (superseded extents, insert runs) before the
            maintenance layer folds the whole overlay into a fresh base
            encode (see :meth:`should_rebase` and
            :meth:`~repro.service.GraphRegistry.rebase`).
        min_rebase_bits: absolute garbage floor below which a rebase is
            never worth the full re-encode, whatever the fraction.

    ``CompactionPolicy.never()`` disables automatic compaction (explicit
    :meth:`~repro.dynamic.overlay.DeltaOverlay.compact` calls still work),
    which tests use to exercise long-lived deltas.
    """

    min_delta: int = 8
    degree_fraction: float = 0.25
    rebase_garbage_fraction: float = 0.25
    min_rebase_bits: int = 4096

    def __post_init__(self) -> None:
        if self.min_delta < 1:
            raise ValueError(f"min_delta must be >= 1, got {self.min_delta}")
        if self.degree_fraction < 0:
            raise ValueError(
                f"degree_fraction must be >= 0, got {self.degree_fraction}"
            )
        if not 0 < self.rebase_garbage_fraction <= 1:
            raise ValueError(
                "rebase_garbage_fraction must be in (0, 1], got "
                f"{self.rebase_garbage_fraction}"
            )
        if self.min_rebase_bits < 0:
            raise ValueError(
                f"min_rebase_bits must be >= 0, got {self.min_rebase_bits}"
            )

    def threshold(self, extent_degree: int) -> float:
        """Delta size at which a node with ``extent_degree`` compacts."""
        return max(self.min_delta, self.degree_fraction * extent_degree)

    def should_compact(self, delta_size: int, extent_degree: int) -> bool:
        """True when a node's delta has outgrown the policy's threshold."""
        return delta_size >= self.threshold(extent_degree)

    def should_rebase(self, garbage_bits: int, total_bits: int) -> bool:
        """Whole-overlay analogue of :meth:`should_compact`.

        Per-node compaction folds deltas into the overlay's *side stream*,
        which reclaims decode work but not storage: superseded extents
        stay in the stream as garbage bits.  Once those exceed
        ``rebase_garbage_fraction`` of the stream (and the absolute
        ``min_rebase_bits`` floor), the maintenance scheduler re-encodes
        the merged graph into a fresh base -- the background
        overlay-to-base compaction of the lifecycle layer.
        """
        if garbage_bits < self.min_rebase_bits:
            return False
        return garbage_bits >= self.rebase_garbage_fraction * max(1, total_bits)

    @classmethod
    def never(cls) -> "CompactionPolicy":
        """A policy that never triggers automatic compaction."""
        return cls(min_delta=1 << 60, degree_fraction=0.0)

    @classmethod
    def eager(cls) -> "CompactionPolicy":
        """A policy that compacts a node on its very first delta entry."""
        return cls(min_delta=1, degree_fraction=0.0)


__all__ = ["CompactionPolicy"]
