"""When to fold a node's update delta back into compressed form.

A delta overlay answers reads by merging three sources per node: the frozen
CGR extent, the insert log and the tombstone set.  Every tombstone still
costs decode work (the dead neighbour is decoded, then suppressed at the
filtering step) and every insert is served from a side log that compresses
worse than interval/residual form.  Compaction pays one per-node re-encode to
collapse all three back into a single CGR extent -- the incremental analogue
of the paper's encode step, amortised so that no whole-graph rebuild ever
happens.

:class:`CompactionPolicy` decides *when* that trade is worth it, from two
signals: the absolute delta size and the delta's size relative to the node's
current extent degree.  The mechanism itself (re-encoding into the overlay's
side stream) lives in :class:`repro.dynamic.overlay.DeltaOverlay`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompactionPolicy:
    """Per-node trigger for folding a delta back into CGR form.

    A node is compacted as soon as its delta size (inserts + tombstones)
    reaches ``max(min_delta, degree_fraction * extent_degree)``.  The
    absolute floor keeps low-degree nodes from compacting on every single
    update; the fractional term keeps high-degree hubs from accumulating
    deltas that dwarf their compressed form.

    Attributes:
        min_delta: smallest delta size that can ever trigger compaction.
        degree_fraction: delta size relative to the node's extent degree
            that triggers compaction for high-degree nodes.

    ``CompactionPolicy.never()`` disables automatic compaction (explicit
    :meth:`~repro.dynamic.overlay.DeltaOverlay.compact` calls still work),
    which tests use to exercise long-lived deltas.
    """

    min_delta: int = 8
    degree_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.min_delta < 1:
            raise ValueError(f"min_delta must be >= 1, got {self.min_delta}")
        if self.degree_fraction < 0:
            raise ValueError(
                f"degree_fraction must be >= 0, got {self.degree_fraction}"
            )

    def threshold(self, extent_degree: int) -> float:
        """Delta size at which a node with ``extent_degree`` compacts."""
        return max(self.min_delta, self.degree_fraction * extent_degree)

    def should_compact(self, delta_size: int, extent_degree: int) -> bool:
        """True when a node's delta has outgrown the policy's threshold."""
        return delta_size >= self.threshold(extent_degree)

    @classmethod
    def never(cls) -> "CompactionPolicy":
        """A policy that never triggers automatic compaction."""
        return cls(min_delta=1 << 60, degree_fraction=0.0)

    @classmethod
    def eager(cls) -> "CompactionPolicy":
        """A policy that compacts a node on its very first delta entry."""
        return cls(min_delta=1, degree_fraction=0.0)


__all__ = ["CompactionPolicy"]
