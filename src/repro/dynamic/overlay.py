"""Delta-overlay CGR: incremental edge updates over a frozen compressed base.

The paper's pipeline encodes a graph once and traverses the compressed form
forever after -- correct for static graphs, fatal for serving live traffic,
where every update batch would force a whole-graph re-encode and throw away
every decoded-plan cache entry.  :class:`DeltaOverlay` keeps the encoded base
**frozen** and absorbs mutations the way an LSM tree absorbs writes:

* *insertions* are recorded per node and encoded as a real residual-gap run
  in an append-only **side bit-stream** spliced after the base stream, so the
  traversal strategies (including the warp-centric live decoder, which reads
  raw bits) consume them exactly like base residual segments;
* *deletions* become per-node **tombstones**: the dead neighbour is still
  decoded (its bits are immovable inside the frozen stream) but is suppressed
  in the filtering step of the expansion--filtering--contraction pipeline,
  before the application's filter callback ever sees it;
* once a node's delta outgrows its :class:`~repro.dynamic.compaction.
  CompactionPolicy` threshold the node -- and only that node -- is re-encoded
  into interval/residual form in the side stream (an *extent*), its delta is
  cleared, and the dead bits are accounted as garbage.

Reads are transparent: the overlay duck-types the :class:`~repro.compression.
cgr.CGRGraph` surface the traversal engine consumes (``bits``, ``reader_at``,
``config``, sizes) plus three dynamic hooks the engine picks up when present
-- :meth:`build_node_plan` (merged adjacency plans), :meth:`wrap_filter`
(tombstone suppression) and :meth:`node_epoch` (cache invalidation keys).
Traversal results over the overlay are identical to a from-scratch encode of
the mutated graph; only the *cost* profile differs until compaction catches
up, which is exactly the trade the dynamic-serving benchmarks measure.

Every mutation bumps an **epoch**: a global batch counter plus a per-node
last-mutated mark.  The decoded-plan cache keys entries on the node's epoch,
so a stale plan can never be served even if explicit invalidation is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.compression.bitarray import BitReader, BitWriter, PackedBits
from repro.compression.cgr import CGRGraph, encode_node_adjacency
from repro.compression.gaps import to_vlc_value, zigzag_encode
from repro.dynamic.compaction import CompactionPolicy
from repro.dynamic.updates import (
    DELETE,
    INSERT,
    EdgeUpdate,
    UpdateStats,
    coerce_updates,
)
from repro.traversal.context import (
    FilterFn,
    NodePlan,
    ResidualSegmentPlan,
    build_node_plan as build_structural_plan,
)


class SplicedBits:
    """Read-only view of the base bit stream with the side stream appended.

    Bit offsets below ``len(base)`` resolve into the frozen base stream;
    offsets at or above it resolve into the overlay's append-only side
    stream.  The view implements the packed read surface
    (:meth:`extract` / :meth:`scan`) of
    :class:`~repro.compression.bitarray.PackedBits` by delegating to the two
    underlying packed buffers -- stitching fields that straddle the splice
    boundary from both halves -- so every word-level decoder, including the
    warp-centric speculative decoder and the bulk VLC run API, reads overlay
    data at full speed without modification.  Per-bit indexing is kept for
    compatibility with the seed's list-of-bits surface.
    """

    def __init__(self, base: "PackedBits", side: "PackedBits") -> None:
        self._base = base
        self._base_length = len(base)
        self._side = side

    def __len__(self) -> int:
        return self._base_length + len(self._side)

    def __getitem__(self, index: int) -> int:
        if index < self._base_length:
            return self._base[index]
        return self._side[index - self._base_length]

    def extract(self, position: int, width: int) -> int:
        """Read ``width`` bits MSB-first at ``position`` across the splice."""
        boundary = self._base_length
        end = position + width
        if end <= boundary:
            return self._base.extract(position, width)
        if position >= boundary:
            return self._side.extract(position - boundary, width)
        low_width = end - boundary
        if low_width > len(self._side):
            raise EOFError(
                f"need {width} bits at position {position}, "
                f"only {len(self) - position} remain"
            )
        high = self._base.extract(position, boundary - position)
        return (high << low_width) | self._side.extract(0, low_width)

    def scan(self, position: int, terminator: int = 1) -> int:
        """First ``terminator`` bit at or after ``position``; -1 at stream end."""
        boundary = self._base_length
        if position < boundary:
            found = self._base.scan(position, terminator)
            if found >= 0:
                return found
            position = boundary
        found = self._side.scan(position - boundary, terminator)
        return found + boundary if found >= 0 else -1


@dataclass
class _Extent:
    """A compacted node's re-encoded adjacency list in the side stream."""

    start_bit: int
    bit_length: int
    degree: int


@dataclass
class _InsertRun:
    """One node's pending insertions, encoded as a residual-gap run."""

    #: The delta's ``inserts_version`` this run was encoded at.
    version: int
    segment: ResidualSegmentPlan
    total_bits: int


@dataclass
class NodeDelta:
    """Pending mutations of one node, relative to its current extent.

    ``inserts`` holds neighbours absent from the extent; ``tombstones``
    holds extent neighbours that were deleted.  The two sets are disjoint
    from each other by construction (normalisation happens at apply time).
    ``run`` caches the encoded form of ``inserts``; it is keyed on
    ``inserts_version`` -- bumped only when ``inserts`` itself changes --
    so tombstone-only mutations never force a byte-identical re-encode
    into the side stream.
    """

    inserts: set[int] = field(default_factory=set)
    tombstones: set[int] = field(default_factory=set)
    #: Bumped on every mutation of ``inserts`` (not ``tombstones``).
    inserts_version: int = 0
    run: _InsertRun | None = field(default=None, repr=False)

    @property
    def size(self) -> int:
        """Delta magnitude the compaction policy thresholds on."""
        return len(self.inserts) + len(self.tombstones)

    @property
    def empty(self) -> bool:
        """Whether the delta carries no pending mutations at all."""
        return not self.inserts and not self.tombstones


@dataclass(frozen=True)
class OverlayStats:
    """Point-in-time structural statistics of a :class:`DeltaOverlay`."""

    num_nodes: int
    num_edges: int
    epoch: int
    dirty_nodes: int
    compacted_nodes: int
    pending_inserts: int
    pending_tombstones: int
    side_bits: int
    garbage_bits: int
    live_bits: int
    compactions: int
    updates_applied: int
    updates_ignored: int


class DeltaOverlay:
    """A mutable graph view: frozen CGR base + per-node deltas + extents.

    The overlay is the engine-facing graph of every dynamic entry in the
    :class:`~repro.service.GraphRegistry`: traversal sessions read through it
    transparently (merged adjacency = extent decode, union inserts, minus
    tombstones) while :meth:`apply` absorbs update batches in time
    proportional to the delta, never the graph.

    Args:
        base: the frozen full-graph encode the overlay starts from.
        policy: when to fold a node's delta back into CGR form; defaults to
            :class:`~repro.dynamic.compaction.CompactionPolicy`'s defaults.
            Pass ``CompactionPolicy.never()`` to keep deltas forever.
    """

    def __init__(
        self,
        base: CGRGraph,
        policy: CompactionPolicy | None = None,
    ) -> None:
        self.base = base
        self.config = base.config
        self.policy = policy or CompactionPolicy()
        self.num_nodes = base.num_nodes
        self._num_edges = base.num_edges
        #: Append-only packed side stream; compacted extents and encoded
        #: insert runs land here, word-aligned appends only.
        self._side = BitWriter()
        self._bits = SplicedBits(base.bits, self._side)
        self._deltas: dict[int, NodeDelta] = {}
        self._extents: dict[int, _Extent] = {}
        #: Lazily-built membership sets of each touched node's extent.
        self._extent_sets: dict[int, frozenset[int]] = {}
        #: Monotone batch counter; bumped by every effective apply/compact.
        self.epoch = 0
        self._node_epochs: dict[int, int] = {}
        #: Total tombstones across all deltas, maintained incrementally so
        #: the per-iteration wrap_filter fast path is O(1), not O(dirty).
        self._tombstone_total = 0
        self.garbage_bits = 0
        self.compactions = 0
        self.updates_applied = 0
        self.updates_ignored = 0

    # -- CGRGraph-compatible read surface -------------------------------------

    @property
    def bits(self) -> SplicedBits:
        """The spliced bit stream (base followed by the side stream)."""
        return self._bits

    @property
    def offsets(self):
        """The base ``bitStart[]`` array.

        Only authoritative for non-compacted nodes; use :meth:`reader_at`,
        which redirects compacted nodes to their side-stream extent.
        """
        return self.base.offsets

    @property
    def num_edges(self) -> int:
        """Live directed edge count (base edges + inserts - deletions)."""
        return self._num_edges

    def reader_at(self, node: int):
        """A bit reader positioned at the node's current extent."""
        self._check_node(node)
        extent = self._extents.get(node)
        if extent is not None:
            return BitReader(self._bits, extent.start_bit)
        return BitReader(self._bits, int(self.base.offsets[node]))

    def node_bit_length(self, node: int) -> int:
        """Bits the node's current extent occupies (excluding its delta run)."""
        self._check_node(node)
        extent = self._extents.get(node)
        if extent is not None:
            return extent.bit_length
        return self.base.node_bit_length(node)

    @property
    def total_bits(self) -> int:
        """Size of the spliced stream, dead bits included."""
        return len(self._bits)

    @property
    def live_bits(self) -> int:
        """Bits still reachable through some node's extent or delta run."""
        return self.total_bits - self.garbage_bits

    @property
    def bits_per_edge(self) -> float:
        """Average live bits per stored edge."""
        if self._num_edges == 0:
            return float("nan")
        return self.live_bits / self._num_edges

    @property
    def compression_rate(self) -> float:
        """The paper's metric over live bits: 32 / bits-per-edge."""
        if self._num_edges == 0:
            return float("nan")
        return 32 / self.bits_per_edge

    def size_in_bytes(self) -> int:
        """Device-resident footprint: spliced payload plus the offset array."""
        return (self.total_bits + 7) // 8 + self.base.offsets.nbytes

    # -- merged adjacency ------------------------------------------------------

    def neighbors(self, node: int) -> list[int]:
        """The node's merged sorted adjacency list (extent + inserts - tombstones)."""
        self._check_node(node)
        delta = self._deltas.get(node)
        extent = self._extent_neighbor_set(node)
        if delta is None:
            return sorted(extent)
        merged = (extent | delta.inserts) - delta.tombstones
        return sorted(merged)

    def degree(self, node: int) -> int:
        """Merged out-degree of ``node`` (the *logical* degree after updates)."""
        self._check_node(node)
        delta = self._deltas.get(node)
        base_degree = len(self._extent_neighbor_set(node))
        if delta is None:
            return base_degree
        return base_degree + len(delta.inserts) - len(delta.tombstones)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the merged graph currently contains ``source -> target``."""
        self._check_node(source)
        delta = self._deltas.get(source)
        if delta is not None:
            if target in delta.inserts:
                return True
            if target in delta.tombstones:
                return False
        return target in self._extent_neighbor_set(source)

    def iter_adjacency(self) -> Iterator[list[int]]:
        """Yield every node's merged adjacency list in node order."""
        for node in range(self.num_nodes):
            yield self.neighbors(node)

    def materialize(self):
        """The merged graph as a plain :class:`~repro.graph.graph.Graph`.

        A full O(V + E) decode -- meant for tests and offline checkpointing,
        not the serving path.
        """
        from repro.graph.graph import Graph

        return Graph(list(self.iter_adjacency()))

    # -- engine hooks ----------------------------------------------------------

    def build_node_plan(self, node: int) -> NodePlan:
        """Merged traversal plan: structural decode of the extent, plus the
        node's insert run appended as one extra residual segment.

        Tombstoned neighbours intentionally remain in the plan -- their bits
        sit inside the frozen extent, so the simulated warp still pays to
        decode them (that is the real read-amplification cost of deletions
        before compaction); :meth:`wrap_filter` stops them from reaching the
        application.
        """
        plan = build_structural_plan(self, node)
        delta = self._deltas.get(node)
        if delta is not None and delta.inserts:
            segment = self._insert_segment(node, delta)
            plan.residual_segments.append(segment)
            plan.degree += segment.count
        return plan

    def wrap_filter(self, filter_fn: FilterFn) -> FilterFn:
        """Interpose tombstone suppression before the application filter.

        Returns ``filter_fn`` unchanged when no tombstones exist (the common
        fast path), otherwise a wrapper that rejects deleted ``(source,
        neighbor)`` pairs during the filtering step -- the contraction never
        admits a dead edge, whatever strategy decoded it.
        """
        deltas = self._deltas
        if self._tombstone_total == 0:
            return filter_fn

        def tombstone_filter(source: int, neighbor: int) -> bool:
            delta = deltas.get(source)
            if delta is not None and neighbor in delta.tombstones:
                return False
            return filter_fn(source, neighbor)

        return tombstone_filter

    def node_epoch(self, node: int) -> int:
        """Epoch of the node's last mutation (0 when never mutated).

        The decoded-plan cache keys entries on this value, so plans built
        before a mutation can never be served after it.
        """
        return self._node_epochs.get(node, 0)

    def is_dirty(self, node: int) -> bool:
        """Whether the node currently carries an un-compacted delta."""
        return node in self._deltas

    def delta_size(self, node: int) -> int:
        """Pending inserts + tombstones of ``node`` (0 when clean)."""
        delta = self._deltas.get(node)
        return 0 if delta is None else delta.size

    def dirty_nodes(self) -> list[int]:
        """Every node carrying an un-compacted delta, sorted ascending.

        The maintenance scheduler's work list: it compacts the largest
        deltas first within a bounded per-tick budget (see
        :mod:`repro.lifecycle.maintenance`).
        """
        return sorted(self._deltas)

    # -- updates ---------------------------------------------------------------

    def apply(self, updates: Iterable) -> UpdateStats:
        """Absorb a batch of edge updates; returns what actually changed.

        Updates are applied in order with no-op normalisation: duplicate
        inserts, deletes of absent edges and self-loops are counted in
        ``stats.ignored``.  Node ids outside ``[0, num_nodes)`` raise
        :class:`ValueError` *before any state changes* -- a rejected batch
        is all-or-nothing, so the overlay never diverges from its callers'
        bookkeeping.  When anything changed, the overlay's epoch advances
        and every touched node is marked with it; nodes whose delta crossed
        the compaction threshold are folded back into CGR form before
        returning.
        """
        batch = coerce_updates(updates)
        for update in batch:
            self._check_node(update.source)
            self._check_node(update.target)
        stats = UpdateStats()
        for update in batch:
            self._apply_one(update, stats)
        if stats.touched_nodes:
            self.epoch += 1
            for node in stats.touched_nodes:
                self._node_epochs[node] = self.epoch
            for node in sorted(stats.touched_nodes):
                delta = self._deltas.get(node)
                if delta is not None and self.policy.should_compact(
                    delta.size, len(self._extent_neighbor_set(node))
                ):
                    self.compact(node)
                    stats.compactions += 1
        self.updates_applied += stats.changed
        self.updates_ignored += stats.ignored
        return stats

    def insert_edge(self, source: int, target: int) -> UpdateStats:
        """Apply a single insertion (see :meth:`apply`)."""
        return self.apply([EdgeUpdate.insert(source, target)])

    def delete_edge(self, source: int, target: int) -> UpdateStats:
        """Apply a single deletion (see :meth:`apply`)."""
        return self.apply([EdgeUpdate.delete(source, target)])

    def _apply_one(self, update: EdgeUpdate, stats: UpdateStats) -> None:
        source, target = update.source, update.target
        if source == target:
            stats.ignored += 1
            return
        in_extent = target in self._extent_neighbor_set(source)
        delta = self._deltas.get(source)

        if update.kind == INSERT:
            if in_extent:
                if delta is not None and target in delta.tombstones:
                    delta.tombstones.discard(target)  # resurrect
                    self._tombstone_total -= 1
                else:
                    stats.ignored += 1
                    return
            else:
                if delta is not None and target in delta.inserts:
                    stats.ignored += 1
                    return
                if delta is None:
                    delta = self._deltas.setdefault(source, NodeDelta())
                delta.inserts.add(target)
                delta.inserts_version += 1
            self._num_edges += 1
            stats.inserted += 1
        else:  # DELETE
            if delta is not None and target in delta.inserts:
                delta.inserts.discard(target)
                delta.inserts_version += 1
            elif in_extent and (delta is None or target not in delta.tombstones):
                if delta is None:
                    delta = self._deltas.setdefault(source, NodeDelta())
                delta.tombstones.add(target)
                self._tombstone_total += 1
            else:
                stats.ignored += 1
                return
            self._num_edges -= 1
            stats.deleted += 1

        stats.touched_nodes.add(source)
        stats.applied.append(update)
        if delta is not None and delta.empty:
            self._drop_delta(source)

    # -- compaction ------------------------------------------------------------

    def compact(self, node: int) -> bool:
        """Re-encode ``node``'s merged adjacency into a fresh side-stream extent.

        The node's delta is cleared, its previous extent (base or side) and
        any encoded insert run become garbage, and the node's epoch advances
        so cached plans rebuild from the new extent.  Returns ``False`` when
        the node was already clean (nothing to fold).
        """
        self._check_node(node)
        delta = self._deltas.get(node)
        if delta is None:
            return False
        merged = self.neighbors(node)
        writer = BitWriter()
        encode_node_adjacency(writer, self.config, node, merged)
        old = self._extents.get(node)
        self.garbage_bits += (
            old.bit_length if old is not None else self.base.node_bit_length(node)
        )
        start = len(self._bits)
        self._side.extend(writer)
        self._extents[node] = _Extent(
            start_bit=start, bit_length=writer.bit_length, degree=len(merged)
        )
        self._extent_sets[node] = frozenset(merged)
        self._drop_delta(node)
        self.compactions += 1
        self.epoch += 1
        self._node_epochs[node] = self.epoch
        return True

    def compact_all(self) -> int:
        """Compact every dirty node; returns how many were folded."""
        count = 0
        for node in sorted(self._deltas):
            if self.compact(node):
                count += 1
        return count

    # -- persistence -----------------------------------------------------------

    @property
    def side_stream(self) -> PackedBits:
        """The append-only side stream (read-only by convention).

        Exposed for the persistent store (:mod:`repro.store`), which writes
        the stream's words verbatim into a delta file; everything else
        should read through :attr:`bits`.
        """
        return self._side

    def state_dict(self) -> dict:
        """JSON-safe structural state: everything except the side stream.

        Together with the side stream's words (written separately, see
        :attr:`side_stream`) this captures the overlay exactly:
        :meth:`from_state` rebuilds an overlay whose merged adjacency,
        epochs, extents, pending deltas *and bit-level layout* are identical
        to this one, so traversal plans -- and therefore simulated costs --
        are reproduced bit for bit after a restore.
        """
        deltas = []
        for node in sorted(self._deltas):
            delta = self._deltas[node]
            run = delta.run
            encoded_run = None
            if run is not None:
                segment = run.segment
                encoded_run = {
                    "version": run.version,
                    "total_bits": run.total_bits,
                    "segment": {
                        "data_start_bit": segment.data_start_bit,
                        "count": segment.count,
                        "count_bits": segment.count_bits,
                        "decoded": [list(entry) for entry in segment.decoded],
                    },
                }
            deltas.append({
                "node": node,
                "inserts": sorted(delta.inserts),
                "tombstones": sorted(delta.tombstones),
                "inserts_version": delta.inserts_version,
                "run": encoded_run,
            })
        return {
            "epoch": self.epoch,
            "num_edges": self._num_edges,
            "garbage_bits": self.garbage_bits,
            "compactions": self.compactions,
            "updates_applied": self.updates_applied,
            "updates_ignored": self.updates_ignored,
            "node_epochs": [
                [node, epoch] for node, epoch in sorted(self._node_epochs.items())
            ],
            "extents": [
                [node, extent.start_bit, extent.bit_length, extent.degree]
                for node, extent in sorted(self._extents.items())
            ],
            "deltas": deltas,
            "side_bit_length": len(self._side),
        }

    @classmethod
    def from_state(
        cls,
        base: CGRGraph,
        state: dict,
        side: PackedBits,
        policy: CompactionPolicy | None = None,
    ) -> "DeltaOverlay":
        """Rebuild an overlay from :meth:`state_dict` output plus its side
        stream, without replaying any update.

        ``side`` must hold exactly the bits the snapshotted overlay's side
        stream held (``state["side_bit_length"]`` of them); every restored
        extent and insert run references absolute offsets into the spliced
        stream, so the splice layout must match bit for bit.
        """
        if len(side) != state["side_bit_length"]:
            raise ValueError(
                f"side stream holds {len(side)} bits, state expects "
                f"{state['side_bit_length']}"
            )
        overlay = cls(base, policy=policy)
        writer = BitWriter()
        writer.extend(side)
        overlay._side = writer
        overlay._bits = SplicedBits(base.bits, writer)
        overlay.epoch = state["epoch"]
        overlay._num_edges = state["num_edges"]
        overlay.garbage_bits = state["garbage_bits"]
        overlay.compactions = state["compactions"]
        overlay.updates_applied = state["updates_applied"]
        overlay.updates_ignored = state["updates_ignored"]
        overlay._node_epochs = {
            int(node): int(epoch) for node, epoch in state["node_epochs"]
        }
        overlay._extents = {
            int(node): _Extent(
                start_bit=int(start), bit_length=int(bits), degree=int(degree)
            )
            for node, start, bits, degree in state["extents"]
        }
        for record in state["deltas"]:
            delta = NodeDelta(
                inserts=set(int(v) for v in record["inserts"]),
                tombstones=set(int(v) for v in record["tombstones"]),
                inserts_version=int(record["inserts_version"]),
            )
            encoded_run = record["run"]
            if encoded_run is not None:
                segment = encoded_run["segment"]
                delta.run = _InsertRun(
                    version=int(encoded_run["version"]),
                    total_bits=int(encoded_run["total_bits"]),
                    segment=ResidualSegmentPlan(
                        data_start_bit=int(segment["data_start_bit"]),
                        count=int(segment["count"]),
                        count_bits=int(segment["count_bits"]),
                        decoded=tuple(
                            (int(n), int(s), int(b))
                            for n, s, b in segment["decoded"]
                        ),
                    ),
                )
            overlay._deltas[int(record["node"])] = delta
            overlay._tombstone_total += len(delta.tombstones)
        return overlay

    # -- introspection ---------------------------------------------------------

    def stats(self) -> OverlayStats:
        """Structural counters for monitoring and tests."""
        return OverlayStats(
            num_nodes=self.num_nodes,
            num_edges=self._num_edges,
            epoch=self.epoch,
            dirty_nodes=len(self._deltas),
            compacted_nodes=len(self._extents),
            pending_inserts=sum(len(d.inserts) for d in self._deltas.values()),
            pending_tombstones=sum(
                len(d.tombstones) for d in self._deltas.values()
            ),
            side_bits=len(self._side),
            garbage_bits=self.garbage_bits,
            live_bits=self.live_bits,
            compactions=self.compactions,
            updates_applied=self.updates_applied,
            updates_ignored=self.updates_ignored,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaOverlay(nodes={self.num_nodes}, edges={self._num_edges}, "
            f"dirty={len(self._deltas)}, compacted={len(self._extents)}, "
            f"epoch={self.epoch})"
        )

    # -- internals -------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    def _drop_delta(self, node: int) -> None:
        delta = self._deltas.pop(node, None)
        if delta is None:
            return
        self._tombstone_total -= len(delta.tombstones)
        if delta.run is not None:
            self.garbage_bits += delta.run.total_bits

    def _extent_neighbor_set(self, node: int) -> frozenset[int]:
        """Membership set of the node's current extent (cached once touched)."""
        cached = self._extent_sets.get(node)
        if cached is not None:
            return cached
        if node in self._extents:
            members = frozenset(self._extent_neighbor_list(node))
        else:
            members = frozenset(self.base.neighbors(node))
        self._extent_sets[node] = members
        return members

    def _extent_neighbor_list(self, node: int) -> list[int]:
        """Decode the node's extent (only) into a neighbour list."""
        plan = build_structural_plan(self, node)
        result: list[int] = []
        for interval in plan.intervals:
            result.extend(interval.nodes())
        for segment in plan.residual_segments:
            result.extend(neighbor for neighbor, _, _ in segment.decoded)
        return result

    def _insert_segment(self, node: int, delta: NodeDelta) -> ResidualSegmentPlan:
        """The node's insert run as a residual segment, re-encoded only when
        the insert set itself changed since the last encode."""
        run = delta.run
        if run is None or run.version != delta.inserts_version:
            if run is not None:
                self.garbage_bits += run.total_bits
            run = self._encode_insert_run(node, delta.inserts, delta.inserts_version)
            delta.run = run
        return run.segment

    def _encode_insert_run(
        self, node: int, inserts: set[int], version: int
    ) -> _InsertRun:
        """Append ``inserts`` to the side stream as one CGR residual run.

        The run uses the exact gap encoding of a residual segment (count
        field, then a zig-zagged first gap relative to the source and
        ``gap - 1`` followers), so the live warp-centric decoder can decode
        it straight from the spliced bits; the pre-decoded tuples let every
        other strategy replay it without touching the stream.
        """
        scheme = self.config.scheme
        writer = BitWriter()
        ordered = sorted(inserts)
        scheme.encode(writer, to_vlc_value(len(ordered)))
        count_bits = writer.bit_length
        relative: list[tuple[int, int, int]] = []
        previous: int | None = None
        for index, neighbor in enumerate(ordered):
            start = writer.bit_length
            if index == 0:
                gap = zigzag_encode(neighbor - node)
            else:
                gap = neighbor - previous - 1
            scheme.encode(writer, to_vlc_value(gap))
            relative.append((neighbor, start, writer.bit_length - start))
            previous = neighbor
        offset = len(self._bits)
        self._side.extend(writer)
        segment = ResidualSegmentPlan(
            data_start_bit=offset + count_bits,
            count=len(ordered),
            count_bits=count_bits,
            decoded=tuple(
                (neighbor, offset + start, bits)
                for neighbor, start, bits in relative
            ),
        )
        return _InsertRun(
            version=version, segment=segment, total_bits=writer.bit_length
        )


__all__ = [
    "DeltaOverlay",
    "NodeDelta",
    "OverlayStats",
    "SplicedBits",
]
