"""Dynamic graph updates: delta-overlay CGR with incremental serving.

Real serving workloads mutate their graphs between queries.  This package
lets the compressed-graph stack absorb edge insertions and deletions without
the whole-graph re-encode that would otherwise be paid per update batch --
the incremental-maintenance idea of answering-queries-under-updates applied
to the CGR/traversal/serving stack:

* :mod:`repro.dynamic.updates` -- :class:`EdgeUpdate` batches, the
  :class:`UpdateStats` bookkeeping record and batch helpers;
* :mod:`repro.dynamic.overlay` -- :class:`DeltaOverlay`, the mutable
  engine-facing graph: a frozen CGR base, per-node insert logs encoded in an
  append-only side bit-stream, tombstoned deletions suppressed in the
  filtering step, and merged traversal plans served transparently to every
  scheduling strategy;
* :mod:`repro.dynamic.compaction` -- :class:`CompactionPolicy`, the per-node
  threshold at which a delta is folded back into interval/residual form
  (amortised: one node at a time, never the whole graph).

Quick start -- mutate a registered graph and keep serving::

    from repro import EdgeUpdate, BFSQuery, TraversalService

    service = TraversalService()
    service.register_graph("live", graph)
    service.apply_updates("live", [
        EdgeUpdate.insert(0, 7), EdgeUpdate.delete(3, 4),
    ])
    results = service.submit([BFSQuery("live", source=0)])  # sees the updates
"""

from repro.dynamic.compaction import CompactionPolicy
from repro.dynamic.overlay import DeltaOverlay, NodeDelta, OverlayStats, SplicedBits
from repro.dynamic.updates import (
    DeltaRecord,
    EdgeUpdate,
    UpdateStats,
    coerce_updates,
    delete_edge,
    insert_edge,
    symmetrized,
)

__all__ = [
    "CompactionPolicy",
    "DeltaOverlay",
    "DeltaRecord",
    "EdgeUpdate",
    "NodeDelta",
    "OverlayStats",
    "SplicedBits",
    "UpdateStats",
    "coerce_updates",
    "delete_edge",
    "insert_edge",
    "symmetrized",
]
