"""Scaled synthetic models of the paper's five evaluation datasets.

The paper evaluates uk-2002, uk-2007 (web crawls), ljournal, twitter (social
networks) and brain (a dense biological network); their sizes (Table 1) range
from 79 million to 3.7 billion edges and the raw data is not redistributable
here.  Each :class:`DatasetSpec` below therefore describes a *synthetic scale
model*: a generator call tuned so that the structural property the paper
attributes to the dataset (locality, skew, density) is present, at a size that
runs in seconds on a laptop.

``load_dataset(name)`` returns the generated :class:`~repro.graph.graph.Graph`;
results are cached per process because the benchmark harness loads the same
dataset for many configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.graph.generators import (
    power_law_graph,
    uniform_dense_graph,
    web_locality_graph,
)
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic dataset model."""

    name: str
    category: str
    paper_nodes: str
    paper_edges: str
    paper_avg_degree: float
    description: str
    builder: Callable[[int], Graph]
    default_scale: int
    #: Node/edge counts of the real dataset (Table 1), used to project device
    #: memory footprints at paper scale (the OOM bars of Figures 8 and 15).
    paper_node_count: int = 0
    paper_edge_count: int = 0
    #: Fraction of edges remaining after the virtual-node preprocessing the
    #: evaluation applies to every dataset (effective mainly on web graphs).
    virtual_node_edge_factor: float = 1.0

    def build(self, scale: int | None = None) -> Graph:
        """Generate the graph at ``scale`` nodes (defaults to the spec's size)."""
        return self.builder(scale or self.default_scale)

    def stored_edges_at_paper_scale(self) -> int:
        """Edge count after virtual-node preprocessing at the real scale."""
        return int(self.paper_edge_count * self.virtual_node_edge_factor)

    def projected_footprint_bytes(
        self,
        bits_per_edge: float,
        overhead: float = 1.0,
        num_shards: int = 1,
        boundary_edge_fraction: float | None = None,
    ) -> int:
        """Device bytes an approach would need for the *real* dataset.

        ``bits_per_edge`` is the per-edge cost measured on the synthetic model
        (32 for CSR, the measured CGR rate for GCGT); ``overhead`` multiplies
        the total for framework baselines that allocate extra structures.

        With ``num_shards > 1`` the projection models the sharded layout of
        :class:`repro.shard.ShardedCGRGraph`: every edge's payload is still
        stored exactly once (with its source's owner), but each shard
        replicates the per-node arrays (``bitStart[]`` offsets, frontier and
        label vectors), and the boundary-edge table keeps one
        ``(source, target)`` entry per edge whose endpoints live on
        different shards.  ``boundary_edge_fraction`` is the cut fraction of
        the partitioner in use; when omitted it defaults to the expected cut
        of a hash partition, ``1 - 1/num_shards``.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if boundary_edge_fraction is not None and not (
            0.0 <= boundary_edge_fraction <= 1.0
        ):
            raise ValueError(
                "boundary_edge_fraction must lie in [0, 1], got "
                f"{boundary_edge_fraction}"
            )
        stored_edges = self.stored_edges_at_paper_scale()
        edge_bytes = stored_edges * bits_per_edge / 8
        # offsets / frontier / labels, replicated per shard.
        node_bytes = self.paper_node_count * 8 * num_shards
        boundary_bytes = 0.0
        if num_shards > 1:
            if boundary_edge_fraction is None:
                boundary_edge_fraction = 1 - 1 / num_shards
            # Two 8-byte node ids per boundary-table entry.
            boundary_bytes = stored_edges * boundary_edge_fraction * 16
        return int((edge_bytes + node_bytes + boundary_bytes) * overhead)


def _uk2002(num_nodes: int) -> Graph:
    return web_locality_graph(
        num_nodes,
        avg_degree=16.0,
        locality_window=24,
        run_probability=0.7,
        copy_probability=0.3,
        seed=2002,
    )


def _uk2007(num_nodes: int) -> Graph:
    return web_locality_graph(
        num_nodes,
        avg_degree=32.0,
        locality_window=16,
        run_probability=0.8,
        copy_probability=0.35,
        seed=2007,
    )


def _ljournal(num_nodes: int) -> Graph:
    return power_law_graph(
        num_nodes,
        avg_degree=15.0,
        exponent=2.3,
        max_degree_fraction=0.03,
        hub_count=max(2, num_nodes // 500),
        seed=2008,
    )


def _twitter(num_nodes: int) -> Graph:
    return power_law_graph(
        num_nodes,
        avg_degree=32.0,
        exponent=1.9,
        max_degree_fraction=0.3,
        hub_count=max(4, num_nodes // 150),
        seed=2010,
    )


def _brain(num_nodes: int) -> Graph:
    return uniform_dense_graph(
        num_nodes,
        degree=96,
        cluster_size=128,
        inside_fraction=0.85,
        seed=2015,
    ).to_undirected()


DATASETS: dict[str, DatasetSpec] = {
    "uk-2002": DatasetSpec(
        name="uk-2002",
        category="Web",
        paper_nodes="18.5M",
        paper_edges="298M",
        paper_avg_degree=16.1,
        description="Web crawl of the .uk domain (2002); strong locality.",
        builder=_uk2002,
        default_scale=4000,
        paper_node_count=18_520_486,
        paper_edge_count=298_113_762,
        virtual_node_edge_factor=0.55,
    ),
    "uk-2007": DatasetSpec(
        name="uk-2007",
        category="Web",
        paper_nodes="105M",
        paper_edges="3.73B",
        paper_avg_degree=35.5,
        description="Larger, denser .uk web crawl (2007); strongest locality.",
        builder=_uk2007,
        default_scale=5000,
        paper_node_count=105_896_555,
        paper_edge_count=3_738_733_648,
        virtual_node_edge_factor=0.5,
    ),
    "ljournal": DatasetSpec(
        name="ljournal",
        category="Social Network",
        paper_nodes="5.3M",
        paper_edges="79M",
        paper_avg_degree=14.9,
        description="LiveJournal friendship graph (2008); power-law, weak locality.",
        builder=_ljournal,
        default_scale=4000,
        paper_node_count=5_363_260,
        paper_edge_count=79_023_142,
        virtual_node_edge_factor=0.95,
    ),
    "twitter": DatasetSpec(
        name="twitter",
        category="Social Network",
        paper_nodes="41.6M",
        paper_edges="1.46B",
        paper_avg_degree=35.1,
        description="Twitter follower graph (2010); extreme skew with super nodes.",
        builder=_twitter,
        default_scale=4000,
        paper_node_count=41_652_230,
        paper_edge_count=1_468_365_182,
        virtual_node_edge_factor=0.95,
    ),
    "brain": DatasetSpec(
        name="brain",
        category="Biology",
        paper_nodes="784K",
        paper_edges="267M",
        paper_avg_degree=683.0,
        description="Human brain connectome; dense, near-uniform degree, clustered.",
        builder=_brain,
        default_scale=2000,
        paper_node_count=784_262,
        paper_edge_count=267_844_669,
        virtual_node_edge_factor=0.9,
    ),
}


@lru_cache(maxsize=32)
def load_dataset(name: str, scale: int | None = None) -> Graph:
    """Generate (and cache) the synthetic model of a paper dataset.

    Args:
        name: one of ``uk-2002``, ``uk-2007``, ``ljournal``, ``twitter``,
            ``brain``.
        scale: optional number of nodes overriding the spec's default; smaller
            values make tests faster, larger values sharpen the statistics.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    return spec.build(scale)
