"""Compressed Sparse Row (CSR) graph format.

CSR is the uncompressed device-resident format every GPU baseline in the paper
operates on (Figure 1): a row-offset array of length ``V + 1`` and a column
index array of length ``E``.  The GPU-CSR and Gunrock-like baselines in this
reproduction traverse this structure on the SIMT simulator; CGR's compression
rate is reported relative to its 32-bit-per-edge footprint.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph


class CSRGraph:
    """Row offsets + column indices view of a directed graph."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if len(self.indptr) == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Build CSR arrays from a :class:`Graph`."""
        return cls.from_adjacency(graph.adjacency())

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "CSRGraph":
        """Build CSR arrays from sorted, in-range adjacency lists.

        The input must already be in the canonical form :class:`Graph`
        produces -- every list strictly increasing with ids in
        ``[0, len(adjacency))``.  Anything else (negative ids, out-of-range
        neighbours, unsorted or duplicated entries) would silently mis-encode
        the column-index array, so it raises :class:`ValueError` instead.
        """
        num_nodes = len(adjacency)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        for node, neighbors in enumerate(adjacency):
            indptr[node + 1] = indptr[node] + len(neighbors)
        indices = np.zeros(int(indptr[-1]), dtype=np.int64)
        for node, neighbors in enumerate(adjacency):
            previous = -1
            for neighbor in neighbors:
                neighbor = int(neighbor)
                if not 0 <= neighbor < num_nodes:
                    raise ValueError(
                        f"node {node} has neighbour {neighbor} outside "
                        f"[0, {num_nodes})"
                    )
                if neighbor <= previous:
                    raise ValueError(
                        f"adjacency list of node {node} is not strictly "
                        f"increasing at neighbour {neighbor}; sort and "
                        "deduplicate it first (e.g. via Graph)"
                    )
                previous = neighbor
            indices[indptr[node]:indptr[node + 1]] = neighbors
        return cls(indptr, indices)

    # -- accessors ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges."""
        return len(self.indices)

    def neighbors(self, node: int) -> np.ndarray:
        """The neighbour slice of ``node`` (a view into ``indices``)."""
        self._check_node(node)
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        self._check_node(node)
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Every node's out-degree as one array."""
        return np.diff(self.indptr)

    def to_graph(self) -> Graph:
        """Convert back into the adjacency-list container."""
        return Graph([
            self.indices[self.indptr[node]:self.indptr[node + 1]].tolist()
            for node in range(self.num_nodes)
        ])

    # -- footprint ----------------------------------------------------------

    @property
    def bits_per_edge(self) -> float:
        """Bits per edge of the 32-bit column-index representation."""
        if self.num_edges == 0:
            return float("nan")
        return 32.0

    def size_in_bytes(self) -> int:
        """Device footprint assuming 32-bit column indices and 64-bit offsets."""
        return 4 * self.num_edges + 8 * (self.num_nodes + 1)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(nodes={self.num_nodes}, edges={self.num_edges})"
