"""Edge-list input/output.

The datasets the paper uses are distributed as plain edge lists (one
``source target`` pair per line).  These helpers read and write that format so
users can feed their own graphs to the library, and so the examples can
round-trip generated graphs through files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.graph.graph import Graph


def write_edge_list(graph: Graph, path: str | Path, header: bool = True) -> None:
    """Write a graph as a whitespace-separated edge list.

    With ``header=True`` the first line is ``# nodes=<V> edges=<E>`` so the
    node count survives even if trailing nodes are isolated.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for source, target in graph.edges():
            handle.write(f"{source} {target}\n")


def read_edge_list(path: str | Path, num_nodes: int | None = None) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`.

    Lines starting with ``#`` or ``%`` are treated as comments; a
    ``# nodes=<V> ...`` header, if present, fixes the node count.  Otherwise
    the node count is ``max node id + 1`` unless ``num_nodes`` is given.

    Malformed inputs raise :class:`ValueError` with the offending line:
    edge lines with fewer than two fields, negative node ids, and a
    self-inconsistent header that declares fewer nodes than the largest
    node id the edge list references (checked only when the header is
    actually used -- an explicit ``num_nodes`` still overrides a stale
    header, as documented above).
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    declared_nodes: int | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line[0] in "#%":
                declared_nodes = _parse_header_nodes(line, declared_nodes)
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            source, target = int(parts[0]), int(parts[1])
            if source < 0 or target < 0:
                raise ValueError(
                    f"negative node id in edge line {line!r}; "
                    "node ids must be non-negative"
                )
            edges.append((source, target))
    if num_nodes is None:
        max_id = max(max(s, t) for s, t in edges) if edges else -1
        if declared_nodes is not None:
            if declared_nodes <= max_id:
                raise ValueError(
                    f"header declares nodes={declared_nodes} but the edge "
                    f"list references node id {max_id}; the header must "
                    f"declare at least {max_id + 1} nodes"
                )
            num_nodes = declared_nodes
        else:
            num_nodes = max_id + 1
    return Graph.from_edges(num_nodes, edges)


def _parse_header_nodes(line: str, current: int | None) -> int | None:
    """Extract ``nodes=<V>`` from a comment line if present."""
    for token in line.replace("#", " ").replace("%", " ").split():
        if token.startswith("nodes="):
            try:
                return int(token.split("=", 1)[1])
            except ValueError:
                return current
    return current


def edges_to_adjacency(num_nodes: int, edges: Iterable[tuple[int, int]]) -> list[list[int]]:
    """Convenience: turn an edge iterable into sorted adjacency lists."""
    return Graph.from_edges(num_nodes, edges).adjacency()
