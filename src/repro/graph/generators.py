"""Synthetic graph generators.

The paper evaluates on five real datasets the reproduction cannot ship
(multi-billion-edge web crawls and social networks).  These generators produce
scaled-down graphs whose *structural properties* match what the paper says
matters for each dataset class:

* web graphs (uk-2002, uk-2007): strong locality and neighbour-list similarity
  -> long consecutive runs -> high interval coverage -> high compression;
* social networks (ljournal, twitter): power-law out-degree with super nodes
  and poor locality -> skewed residual lengths, modest compression;
* the brain network: near-uniform but very high degree with hierarchical
  clustering -> compression-friendly, uniform workload.

Every generator is deterministic for a given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def web_locality_graph(
    num_nodes: int,
    avg_degree: float = 16.0,
    locality_window: int = 32,
    run_probability: float = 0.65,
    copy_probability: float = 0.3,
    seed: int | None = 0,
) -> Graph:
    """A web-graph-like generator with strong locality and list similarity.

    Each node draws a degree around ``avg_degree``; a ``run_probability``
    fraction of its neighbours is laid out as consecutive runs close to its
    own id (producing intervals after sorting), a ``copy_probability``
    fraction is copied from the previous node's list (similarity, as the
    WebGraph papers exploit), and the remainder is random within a locality
    window (plus a few global "hyperlinks").
    """
    rng = _rng(seed)
    adjacency: list[list[int]] = []
    previous: list[int] = []
    for node in range(num_nodes):
        degree = max(1, int(rng.poisson(avg_degree)))
        neighbors: set[int] = set()

        copied = int(degree * copy_probability)
        if previous and copied:
            take = rng.choice(len(previous), size=min(copied, len(previous)), replace=False)
            neighbors.update(previous[i] for i in take)

        run_budget = int(degree * run_probability)
        while run_budget > 3:
            run_length = int(rng.integers(4, 9))
            run_length = min(run_length, run_budget)
            base = node + int(rng.integers(-locality_window, locality_window + 1))
            base = max(0, min(num_nodes - run_length - 1, base))
            neighbors.update(range(base, base + run_length))
            run_budget -= run_length

        while len(neighbors) < degree:
            if rng.random() < 0.9:
                candidate = node + int(rng.integers(-locality_window, locality_window + 1))
            else:
                candidate = int(rng.integers(0, num_nodes))
            candidate = max(0, min(num_nodes - 1, candidate))
            neighbors.add(candidate)

        neighbors.discard(node)
        current = sorted(neighbors)
        adjacency.append(current)
        previous = current
    return Graph(adjacency)


def power_law_graph(
    num_nodes: int,
    avg_degree: float = 16.0,
    exponent: float = 2.0,
    max_degree_fraction: float = 0.05,
    hub_count: int = 0,
    seed: int | None = 0,
) -> Graph:
    """A social-network-like generator with power-law out-degrees.

    Out-degrees follow a truncated Pareto distribution; ``hub_count`` nodes
    (scattered over the id space) are forced to the maximum degree
    ``max_degree_fraction * num_nodes`` to model the super nodes of follower
    graphs.  Targets are drawn by preferential attachment over a shuffled id
    space, so neighbour ids show *no* locality -- the worst case for interval
    coverage, as the paper observes for twitter.
    """
    rng = _rng(seed)
    raw = rng.pareto(exponent - 1.0, size=num_nodes) + 1.0
    max_degree = max(1, int(num_nodes * max_degree_fraction))
    degrees = np.minimum(
        (raw * avg_degree / raw.mean()).astype(np.int64), max_degree
    )
    degrees = np.maximum(degrees, 1)
    if hub_count > 0:
        hubs = rng.choice(num_nodes, size=min(hub_count, num_nodes), replace=False)
        degrees[hubs] = max_degree

    # Preferential attachment: popularity weights drawn from the same heavy
    # tail, then shuffled so popular nodes are scattered across the id space.
    popularity = rng.pareto(exponent - 1.0, size=num_nodes) + 1.0
    rng.shuffle(popularity)
    popularity /= popularity.sum()

    adjacency: list[list[int]] = []
    for node in range(num_nodes):
        degree = min(int(degrees[node]), num_nodes - 1)
        # Without replacement so forced hub degrees are actually reached.
        targets = rng.choice(num_nodes, size=degree, replace=False, p=popularity)
        neighbors = set(int(t) for t in targets)
        neighbors.discard(node)
        adjacency.append(sorted(neighbors))
    return Graph(adjacency)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = 0,
) -> Graph:
    """A recursive-matrix (R-MAT / Graph500 style) generator.

    ``2**scale`` nodes, ``edge_factor * 2**scale`` directed edges.  The default
    (a, b, c, d) parameters produce the skew typical of social networks.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must lie strictly between 0 and 1")
    rng = _rng(seed)
    num_nodes = 1 << scale
    num_edges = edge_factor * num_nodes
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        go_right_src = (r >= a + b) & (r < a + b + c) | (r >= a + b + c)
        go_right_dst = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        sources += (go_right_src.astype(np.int64)) << (scale - level - 1)
        targets += (go_right_dst.astype(np.int64)) << (scale - level - 1)
    return Graph.from_edges(num_nodes, zip(sources.tolist(), targets.tolist()))


def erdos_renyi_graph(
    num_nodes: int,
    avg_degree: float = 8.0,
    seed: int | None = 0,
) -> Graph:
    """A uniform random directed graph with the given expected out-degree."""
    rng = _rng(seed)
    adjacency: list[list[int]] = []
    for node in range(num_nodes):
        degree = int(rng.poisson(avg_degree))
        targets = set(int(t) for t in rng.integers(0, num_nodes, size=degree))
        targets.discard(node)
        adjacency.append(sorted(targets))
    return Graph(adjacency)


def uniform_dense_graph(
    num_nodes: int,
    degree: int = 64,
    cluster_size: int = 128,
    inside_fraction: float = 0.8,
    seed: int | None = 0,
) -> Graph:
    """A brain-network-like generator: dense, near-uniform, clustered.

    Nodes are grouped into contiguous clusters; most edges stay inside the
    node's cluster (giving locality and interval-friendly runs), the rest go
    to a neighbouring cluster.  Degrees are nearly uniform, which is the
    property the paper uses to explain why task stealing does not help on
    ``brain``.
    """
    rng = _rng(seed)
    adjacency: list[list[int]] = []
    for node in range(num_nodes):
        cluster = node // cluster_size
        cluster_start = cluster * cluster_size
        cluster_end = min(num_nodes, cluster_start + cluster_size)
        node_degree = max(1, int(rng.normal(degree, degree * 0.05)))
        node_degree = min(node_degree, num_nodes - 1)
        inside = min(int(node_degree * inside_fraction), cluster_end - cluster_start - 1)
        neighbors: set[int] = set()
        # Runs of consecutive ids inside the cluster.
        while len(neighbors) < inside:
            run_length = int(rng.integers(4, 12))
            base = int(rng.integers(cluster_start, max(cluster_start + 1, cluster_end - run_length)))
            neighbors.update(range(base, min(cluster_end, base + run_length)))
        # Long-range edges anywhere else in the graph.
        attempts = 0
        while len(neighbors) < node_degree and attempts < 10 * node_degree:
            candidate = int(rng.integers(0, num_nodes))
            neighbors.add(candidate)
            attempts += 1
        neighbors.discard(node)
        adjacency.append(sorted(neighbors))
    return Graph(adjacency)
