"""Graph substrate: containers, formats, generators and dataset models."""

from repro.graph.graph import Graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
    uniform_dense_graph,
    web_locality_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.io import read_edge_list, write_edge_list

__all__ = [
    "Graph",
    "CSRGraph",
    "erdos_renyi_graph",
    "power_law_graph",
    "rmat_graph",
    "uniform_dense_graph",
    "web_locality_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "read_edge_list",
    "write_edge_list",
]
