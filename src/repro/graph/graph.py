"""In-memory graph container.

The reproduction manipulates graphs in three places: when generating or
loading datasets, when reordering/compressing them, and when checking
traversal results against a reference.  :class:`Graph` is the shared
uncompressed container for all of those -- a list of sorted, duplicate-free
adjacency lists with a handful of statistics helpers.  Compressed and
device-resident forms (:class:`repro.graph.csr.CSRGraph`,
:class:`repro.compression.cgr.CGRGraph`) are built from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of the out-degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float

    @classmethod
    def from_degrees(cls, degrees: Sequence[int]) -> "DegreeStats":
        """Summarise a degree sequence (all-zero stats when empty)."""
        if len(degrees) == 0:
            return cls(0, 0, 0.0, 0.0)
        array = np.asarray(degrees)
        return cls(
            minimum=int(array.min()),
            maximum=int(array.max()),
            mean=float(array.mean()),
            median=float(np.median(array)),
        )


class Graph:
    """A directed graph stored as sorted adjacency lists.

    Undirected graphs are represented by symmetrising the edge set
    (:meth:`to_undirected`), matching how the paper treats the ``brain``
    dataset.
    """

    def __init__(self, adjacency: Sequence[Sequence[int]]) -> None:
        self._adjacency: list[list[int]] = [
            sorted(set(int(v) for v in neighbors)) for neighbors in adjacency
        ]
        num_nodes = len(self._adjacency)
        for node, neighbors in enumerate(self._adjacency):
            if not neighbors:
                continue
            if neighbors[0] < 0:
                raise ValueError(
                    f"node {node} has negative neighbour id {neighbors[0]}; "
                    f"node ids must lie in [0, {num_nodes})"
                )
            if neighbors[-1] >= num_nodes:
                raise ValueError(
                    f"node {node} has neighbour {neighbors[-1]} outside "
                    f"[0, {num_nodes})"
                )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Iterable[tuple[int, int]]
    ) -> "Graph":
        """Build a graph from ``(source, target)`` pairs.

        Self-loops and duplicate edges are dropped, matching the usual
        preprocessing of the datasets the paper evaluates.
        """
        adjacency: list[set[int]] = [set() for _ in range(num_nodes)]
        for source, target in edges:
            if source == target:
                continue
            if not (0 <= source < num_nodes and 0 <= target < num_nodes):
                raise ValueError(f"edge ({source}, {target}) outside [0, {num_nodes})")
            adjacency[source].add(target)
        return cls([sorted(neighbors) for neighbors in adjacency])

    @classmethod
    def empty(cls, num_nodes: int) -> "Graph":
        """A graph with ``num_nodes`` nodes and no edges."""
        return cls([[] for _ in range(num_nodes)])

    # -- basic accessors ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges."""
        return sum(len(neighbors) for neighbors in self._adjacency)

    @property
    def average_degree(self) -> float:
        """Mean out-degree (0.0 for the empty graph)."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def neighbors(self, node: int) -> list[int]:
        """The sorted adjacency list of ``node`` (a copy)."""
        self._check_node(node)
        return list(self._adjacency[node])

    def out_degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        self._check_node(source)
        neighbors = self._adjacency[source]
        lo, hi = 0, len(neighbors)
        while lo < hi:
            mid = (lo + hi) // 2
            if neighbors[mid] < target:
                lo = mid + 1
            elif neighbors[mid] > target:
                hi = mid
            else:
                return True
        return False

    def adjacency(self) -> list[list[int]]:
        """All adjacency lists (copies), in node order."""
        return [list(neighbors) for neighbors in self._adjacency]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges."""
        for source, neighbors in enumerate(self._adjacency):
            for target in neighbors:
                yield source, target

    def degrees(self) -> np.ndarray:
        """Out-degree of every node as an array."""
        return np.array([len(neighbors) for neighbors in self._adjacency], dtype=np.int64)

    def degree_stats(self) -> DegreeStats:
        """Min/max/mean/median summary of the degree sequence."""
        return DegreeStats.from_degrees(self.degrees())

    # -- transformations ----------------------------------------------------

    def to_undirected(self) -> "Graph":
        """Return the symmetrised graph (every edge present in both directions)."""
        adjacency: list[set[int]] = [set(neighbors) for neighbors in self._adjacency]
        for source, neighbors in enumerate(self._adjacency):
            for target in neighbors:
                adjacency[target].add(source)
        return Graph([sorted(neighbors) for neighbors in adjacency])

    def reversed(self) -> "Graph":
        """Return the graph with every edge direction flipped."""
        adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for source, target in self.edges():
            adjacency[target].append(source)
        return Graph(adjacency)

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Apply a node reordering.

        ``permutation[old_id] = new_id`` must be a bijection over the node
        ids.  Reordering changes locality -- and therefore compression rate --
        without changing the topology, which is exactly what the paper's
        node-reordering study (Figure 13) varies.
        """
        if len(permutation) != self.num_nodes:
            raise ValueError(
                f"permutation length {len(permutation)} != num_nodes {self.num_nodes}"
            )
        seen = np.zeros(self.num_nodes, dtype=bool)
        for new_id in permutation:
            if not 0 <= new_id < self.num_nodes or seen[new_id]:
                raise ValueError("permutation is not a bijection over node ids")
            seen[new_id] = True
        adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for old_source, neighbors in enumerate(self._adjacency):
            new_source = permutation[old_source]
            adjacency[new_source] = sorted(permutation[t] for t in neighbors)
        return Graph(adjacency)

    def with_edge_updates(self, updates: Iterable) -> "Graph":
        """A copy of the graph with a batch of edge updates applied in order.

        ``updates`` is a sequence of :class:`repro.dynamic.EdgeUpdate`
        objects or ``(kind, source, target)`` triples with ``kind`` being
        ``"insert"`` or ``"delete"`` (duck-typed here so the graph layer
        stays import-free of the dynamic package).  Semantics match
        :meth:`repro.dynamic.DeltaOverlay.apply`: duplicate inserts, deletes
        of absent edges and self-loops are no-ops; out-of-range node ids
        raise :class:`ValueError`.  Untouched adjacency lists are shared
        with the original graph, so the copy costs O(touched nodes), not
        O(V + E).
        """
        num_nodes = self.num_nodes
        touched: dict[int, set[int]] = {}
        for update in updates:
            if isinstance(update, tuple):
                kind, source, target = update
            else:
                kind, source, target = update.kind, update.source, update.target
            if kind not in ("insert", "delete"):
                raise ValueError(f"unknown update kind {kind!r}")
            if not (0 <= source < num_nodes and 0 <= target < num_nodes):
                raise ValueError(
                    f"update ({source}, {target}) outside [0, {num_nodes})"
                )
            if source == target:
                continue
            neighbors = touched.get(source)
            if neighbors is None:
                neighbors = set(self._adjacency[source])
                touched[source] = neighbors
            if kind == "insert":
                neighbors.add(target)
            else:
                neighbors.discard(target)
        result = Graph.__new__(Graph)
        adjacency = list(self._adjacency)
        for node, neighbors in touched.items():
            adjacency[node] = sorted(neighbors)
        result._adjacency = adjacency
        return result

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes``, relabelled to 0..len(nodes)-1."""
        index = {node: i for i, node in enumerate(nodes)}
        adjacency: list[list[int]] = [[] for _ in range(len(nodes))]
        for node in nodes:
            self._check_node(node)
            adjacency[index[node]] = sorted(
                index[t] for t in self._adjacency[node] if t in index
            )
        return Graph(adjacency)

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:  # Graphs are mutable in principle; identity hash.
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"

    # -- helpers ------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
