"""Betweenness Centrality on the frontier pipeline (Brandes, single source).

The paper evaluates the two-pass GPU formulation of Sriram et al.
(Figure 7(d)): a forward BFS-like pass computes, for every node, its distance
from the source and its shortest-path count (sigma), then a backward pass
walks the BFS levels in reverse accumulating the dependency values (delta)
with Brandes' recurrence.  Both passes are frontier expansions, so they run
unchanged on the GCGT engine and on the GPU-CSR baseline.

As in the paper's experiments, a single randomly chosen source is processed;
the exact all-sources BC would simply repeat the two passes per source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.pipeline import FrontierEngine

#: Distance of nodes the forward pass never reached.
UNREACHED = -1


@dataclass
class BCResult:
    """Output of a single-source betweenness-centrality computation."""

    source: int
    distances: np.ndarray
    sigma: np.ndarray
    delta: np.ndarray
    iterations: int

    @property
    def centrality(self) -> np.ndarray:
        """Per-node dependency of the chosen source (delta, source zeroed)."""
        result = self.delta.copy()
        result[self.source] = 0.0
        return result


def betweenness_centrality(engine: FrontierEngine, source: int) -> BCResult:
    """Run the forward and backward passes from ``source``."""
    num_nodes = engine.num_nodes
    if not 0 <= source < num_nodes:
        raise IndexError(f"source {source} out of range [0, {num_nodes})")

    distances = np.full(num_nodes, UNREACHED, dtype=np.int64)
    sigma = np.zeros(num_nodes, dtype=np.float64)
    delta = np.zeros(num_nodes, dtype=np.float64)
    distances[source] = 0
    sigma[source] = 1.0

    # Forward pass: BFS levels plus shortest-path counting.
    levels: list[list[int]] = [[source]]
    iterations = 0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1

        def forward_filter(parent: int, neighbor: int, _depth: int = depth) -> bool:
            if distances[neighbor] == UNREACHED:
                distances[neighbor] = _depth
                sigma[neighbor] += sigma[parent]
                return True
            if distances[neighbor] == _depth:
                sigma[neighbor] += sigma[parent]
            return False

        frontier = engine.expand(frontier, forward_filter)
        iterations += 1
        if frontier:
            levels.append(sorted(set(frontier)))

    # Backward pass: accumulate dependencies level by level, deepest first.
    for level_nodes in reversed(levels[1:] + [[]]):
        if not level_nodes:
            continue

        def backward_filter(node: int, successor: int) -> bool:
            # ``successor`` lies one level deeper iff ``node`` is one of its
            # shortest-path predecessors; accumulate Brandes' recurrence.
            if distances[successor] == distances[node] + 1 and sigma[successor] > 0:
                delta[node] += sigma[node] / sigma[successor] * (1.0 + delta[successor])
            return False

        engine.expand(level_nodes, backward_filter)
        iterations += 1

    # The backward pass above visits levels deepest-first except the source's
    # own level, which contributes nothing to other nodes; handle the source
    # row so its delta is complete as well.
    def source_filter(node: int, successor: int) -> bool:
        if distances[successor] == distances[node] + 1 and sigma[successor] > 0:
            delta[node] += sigma[node] / sigma[successor] * (1.0 + delta[successor])
        return False

    engine.expand([source], source_filter)
    iterations += 1

    return BCResult(
        source=source,
        distances=distances,
        sigma=sigma,
        delta=delta,
        iterations=iterations,
    )


def reference_betweenness(
    adjacency: list[list[int]], source: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sequential Brandes single-source pass used as ground truth in tests."""
    from collections import deque

    n = len(adjacency)
    distances = np.full(n, UNREACHED, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    delta = np.zeros(n, dtype=np.float64)
    distances[source] = 0
    sigma[source] = 1.0

    order: list[int] = []
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in adjacency[node]:
            if distances[neighbor] == UNREACHED:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
            if distances[neighbor] == distances[node] + 1:
                sigma[neighbor] += sigma[node]

    for node in reversed(order):
        for neighbor in adjacency[node]:
            if distances[neighbor] == distances[node] + 1 and sigma[neighbor] > 0:
                delta[node] += sigma[node] / sigma[neighbor] * (1.0 + delta[neighbor])
    return distances, sigma, delta
