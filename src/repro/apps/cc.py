"""Connected Components on the frontier pipeline.

Following Soman et al. (the paper's GPU-CSR baseline for CC) the computation
alternates *hooking* -- linking the component trees of the two endpoints of an
edge that currently disagree -- and *pointer jumping* -- flattening every
component tree to depth one.  Inside the GCGT pipeline (Figure 7(c)) hooking
happens in the filter step and pointer jumping runs between iterations; a node
whose whole neighbourhood already agrees with it is filtered out and does not
re-enter the frontier.

Components are computed on the *undirected* interpretation of the graph, so
callers should pass a symmetrised graph (as the evaluation does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.pipeline import FrontierEngine


@dataclass
class CCResult:
    """Output of a connected-components run."""

    labels: np.ndarray
    iterations: int

    @property
    def num_components(self) -> int:
        """Number of distinct component labels."""
        return int(len(np.unique(self.labels)))

    def same_component(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` carry the same component label.

        Raises :class:`IndexError` for out-of-range ids, including negative
        ones (no silent from-the-end indexing).
        """
        for node in (a, b):
            if not 0 <= node < len(self.labels):
                raise IndexError(
                    f"node {node} out of range [0, {len(self.labels)})"
                )
        return bool(self.labels[a] == self.labels[b])


def connected_components(engine: FrontierEngine, max_iterations: int = 64) -> CCResult:
    """Run hooking + pointer-jumping CC over any frontier engine."""
    num_nodes = engine.num_nodes
    parent = np.arange(num_nodes, dtype=np.int64)

    def find_root(node: int) -> int:
        root = node
        while parent[root] != root:
            root = int(parent[root])
        return root

    def pointer_jump() -> None:
        # Flatten every tree to a star, as the pointer-jumping kernel does.
        for node in range(num_nodes):
            parent[node] = find_root(node)

    def hook(source: int, neighbor: int) -> bool:
        root_u = find_root(source)
        root_v = find_root(neighbor)
        if root_u == root_v:
            return False
        # Deterministic hooking: the larger root is attached to the smaller.
        low, high = (root_u, root_v) if root_u < root_v else (root_v, root_u)
        parent[high] = low
        return True

    frontier = list(range(num_nodes))
    iterations = 0
    while frontier and iterations < max_iterations:
        frontier = engine.expand(frontier, hook)
        pointer_jump()
        # A node re-enters the frontier only if one of its edges hooked; after
        # pointer jumping its neighbourhood may still disagree, so keep the
        # returned nodes (deduplicated) as the next frontier.
        frontier = sorted(set(frontier))
        iterations += 1

    pointer_jump()
    return CCResult(labels=parent.copy(), iterations=iterations)


def reference_components(adjacency: list[list[int]]) -> np.ndarray:
    """Sequential union-find ground truth over the undirected edge set."""
    parent = list(range(len(adjacency)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for source, neighbors in enumerate(adjacency):
        for target in neighbors:
            ra, rb = find(source), find(target)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
    return np.array([find(x) for x in range(len(adjacency))], dtype=np.int64)
