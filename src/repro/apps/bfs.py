"""Breadth-first search on the frontier pipeline.

BFS is the primary workload of the paper's evaluation (Figure 8): starting
from a source node, each iteration labels the unvisited neighbours of the
frontier with the next level and carries them forward.  The filter callback
is the BFS-specific piece of Figure 7(b): admit a neighbour exactly once,
when it is first discovered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.pipeline import FrontierEngine, run_frontier_pipeline

#: Level value of nodes the traversal never reached.
UNREACHED = -1


@dataclass
class BFSResult:
    """Output of one BFS run."""

    source: int
    levels: np.ndarray
    iterations: int

    @property
    def visited_count(self) -> int:
        """Number of nodes reached from the source (including the source)."""
        return int((self.levels != UNREACHED).sum())

    @property
    def max_level(self) -> int:
        """Depth of the BFS tree (0 when only the source was reached)."""
        reached = self.levels[self.levels != UNREACHED]
        return int(reached.max()) if len(reached) else 0

    def level_of(self, node: int) -> int:
        """The discovery level of ``node`` (``UNREACHED`` when unvisited).

        Raises :class:`IndexError` for out-of-range ids, including negative
        ones -- a negative id is a caller bug, not a request for Python's
        from-the-end indexing.
        """
        if not 0 <= node < len(self.levels):
            raise IndexError(
                f"node {node} out of range [0, {len(self.levels)})"
            )
        return int(self.levels[node])


def bfs(engine: FrontierEngine, source: int) -> BFSResult:
    """Run BFS from ``source`` on any frontier engine."""
    num_nodes = engine.num_nodes
    if not 0 <= source < num_nodes:
        raise IndexError(f"source {source} out of range [0, {num_nodes})")
    levels = np.full(num_nodes, UNREACHED, dtype=np.int64)
    levels[source] = 0
    current_level = 0

    def make_filter(level: int):
        def admit_unvisited(parent: int, neighbor: int) -> bool:
            if levels[neighbor] == UNREACHED:
                levels[neighbor] = level
                return True
            return False

        return admit_unvisited

    frontier = [source]
    iterations = 0
    while frontier:
        current_level += 1
        frontier = engine.expand(frontier, make_filter(current_level))
        iterations += 1
    return BFSResult(source=source, levels=levels, iterations=iterations)


def reference_bfs_levels(adjacency: list[list[int]], source: int) -> np.ndarray:
    """Plain sequential BFS used by the tests as ground truth."""
    from collections import deque

    levels = np.full(len(adjacency), UNREACHED, dtype=np.int64)
    levels[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if levels[neighbor] == UNREACHED:
                levels[neighbor] = levels[node] + 1
                queue.append(neighbor)
    return levels


__all__ = ["BFSResult", "bfs", "reference_bfs_levels", "UNREACHED", "run_frontier_pipeline"]
