"""Graph applications built on the expansion--filtering--contraction pipeline.

Section 6 of the paper argues GCGT generalises beyond BFS to any application
that fits the node-frontier pipeline; the evaluation covers BFS (Figure 8),
Connected Components and Betweenness Centrality (Figure 15).  Each module
here implements one application against the engine interface (an object with
``expand(frontier, filter_fn)`` and ``num_nodes``), so the same code runs on
the GCGT engine and on the uncompressed GPU-CSR baseline.
"""

from repro.apps.pipeline import run_frontier_pipeline
from repro.apps.bfs import BFSResult, bfs
from repro.apps.cc import CCResult, connected_components
from repro.apps.bc import BCResult, betweenness_centrality
from repro.apps.pagerank import PPRResult, personalized_pagerank

__all__ = [
    "run_frontier_pipeline",
    "BFSResult",
    "bfs",
    "CCResult",
    "connected_components",
    "BCResult",
    "betweenness_centrality",
    "PPRResult",
    "personalized_pagerank",
]
