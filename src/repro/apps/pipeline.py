"""The expansion--filtering--contraction pipeline (Figure 7(a)).

Every application in :mod:`repro.apps` iterates the same loop: take the
current frontier, *expand* all of its neighbours, *filter* them with an
application-specific predicate that may update per-node state, and *contract*
the qualified neighbours into the next frontier.  The engine performs
expansion and contraction; the application supplies the filter.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence


class FrontierEngine(Protocol):
    """The engine interface the applications program against."""

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the engine's resident graph."""
        ...

    def expand(
        self, frontier: Sequence[int], filter_fn: Callable[[int, int], bool]
    ) -> list[int]:
        """One expansion step: the admitted neighbours of ``frontier``.

        ``filter_fn(source, neighbor)`` sees every live decoded pair; a
        ``True`` return admits the neighbour into the returned next frontier.
        """
        ...


def run_frontier_pipeline(
    engine: FrontierEngine,
    initial_frontier: Sequence[int],
    filter_fn: Callable[[int, int], bool],
    max_iterations: int | None = None,
) -> int:
    """Iterate the pipeline until the frontier drains; return iteration count.

    ``max_iterations`` is a safety valve for applications whose filter could
    keep re-admitting nodes; ``None`` means no limit (BFS-style filters are
    guaranteed to terminate because each node enters the frontier once).
    """
    frontier = list(initial_frontier)
    iterations = 0
    while frontier:
        if max_iterations is not None and iterations >= max_iterations:
            break
        frontier = engine.expand(frontier, filter_fn)
        iterations += 1
    return iterations
