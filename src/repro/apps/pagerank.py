"""Personalized PageRank on the frontier pipeline (Section 6 extension).

The paper lists Personalized PageRank among the applications that fit the
expansion--filtering--contraction pipeline.  This module implements the
standard *forward-push* formulation: each node holds a residual; pushing a
node sends ``alpha`` of its residual to its own PageRank estimate and spreads
the rest uniformly over its out-neighbours; a neighbour whose accumulated
residual crosses ``epsilon * degree`` re-enters the frontier.  The push over
the out-neighbours is exactly one frontier expansion, so the computation runs
unchanged on the GCGT engine and on the uncompressed baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.pipeline import FrontierEngine


@dataclass
class PPRResult:
    """Output of a forward-push personalized PageRank computation."""

    source: int
    estimates: np.ndarray
    residuals: np.ndarray
    iterations: int
    pushes: int

    def top_nodes(self, count: int = 10) -> list[int]:
        """Node ids with the highest PageRank estimates, best first."""
        order = np.argsort(self.estimates)[::-1]
        return [int(node) for node in order[:count]]


def personalized_pagerank(
    engine: FrontierEngine,
    source: int,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    degrees: np.ndarray | None = None,
    max_iterations: int = 200,
) -> PPRResult:
    """Forward-push personalized PageRank from ``source``.

    ``degrees`` (the out-degree of every node) is needed to split residuals;
    when omitted it is measured with one warm-up expansion per frontier, which
    the engines support but costs extra work -- callers that already hold the
    graph should pass ``graph.degrees()``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    num_nodes = engine.num_nodes
    if not 0 <= source < num_nodes:
        raise IndexError(f"source {source} out of range [0, {num_nodes})")

    estimates = np.zeros(num_nodes, dtype=np.float64)
    residuals = np.zeros(num_nodes, dtype=np.float64)
    measured_degrees = (
        np.asarray(degrees, dtype=np.float64) if degrees is not None else None
    )

    residuals[source] = 1.0
    frontier = [source]
    iterations = 0
    pushes = 0

    while frontier and iterations < max_iterations:
        # Snapshot and absorb the residual of every pushed node.
        pushed = sorted(set(frontier))
        shares: dict[int, float] = {}
        for node in pushed:
            residual = residuals[node]
            if residual <= 0.0:
                continue
            estimates[node] += alpha * residual
            residuals[node] = 0.0
            shares[node] = (1.0 - alpha) * residual
            pushes += 1

        next_candidates: set[int] = set()

        def spread(parent: int, neighbor: int) -> bool:
            share = shares.get(parent, 0.0)
            if share <= 0.0:
                return False
            degree = _degree_of(parent, measured_degrees, engine)
            if degree == 0:
                return False
            residuals[neighbor] += share / degree
            threshold = epsilon * max(1.0, _degree_of(neighbor, measured_degrees, engine))
            if residuals[neighbor] >= threshold:
                next_candidates.add(neighbor)
            return False  # frontier management is done manually below

        engine.expand(pushed, spread)
        frontier = sorted(next_candidates)
        iterations += 1

    return PPRResult(
        source=source,
        estimates=estimates,
        residuals=residuals,
        iterations=iterations,
        pushes=pushes,
    )


#: Cache of lazily measured out-degrees per engine id (fallback path only).
_DEGREE_CACHE: dict[int, dict[int, int]] = {}


def _degree_of(node: int, degrees: np.ndarray | None, engine: FrontierEngine) -> float:
    """Out-degree of ``node``; measured via one expansion when not provided."""
    if degrees is not None:
        return float(degrees[node])
    cache = _DEGREE_CACHE.setdefault(id(engine), {})
    if node not in cache:
        count = 0

        def count_neighbor(parent: int, neighbor: int) -> bool:
            nonlocal count
            count += 1
            return False

        engine.expand([node], count_neighbor)
        cache[node] = count
    return float(cache[node])


def reference_pagerank(
    adjacency: list[list[int]],
    source: int,
    alpha: float = 0.15,
    iterations: int = 100,
) -> np.ndarray:
    """Power-iteration personalized PageRank used as ground truth in tests."""
    n = len(adjacency)
    rank = np.zeros(n, dtype=np.float64)
    rank[source] = 1.0
    for _ in range(iterations):
        new_rank = np.zeros(n, dtype=np.float64)
        new_rank[source] += alpha
        for node, neighbors in enumerate(adjacency):
            if not neighbors:
                new_rank[source] += (1.0 - alpha) * rank[node]
                continue
            share = (1.0 - alpha) * rank[node] / len(neighbors)
            for neighbor in neighbors:
                new_rank[neighbor] += share
        rank = new_rank
    return rank
