"""Node-reordering algorithms.

Node reordering changes only the labelling of a graph, but it is the dominant
factor in how well CGR compresses it (Figure 13 of the paper).  This package
implements the five orderings the paper sweeps -- Original, DegSort, BFSOrder,
Gorder and LLP -- plus SlashBurn from the related-work discussion.

Every reordering returns a permutation array with
``permutation[old_id] = new_id``, directly usable by
:meth:`repro.graph.graph.Graph.relabel`.
"""

from repro.reorder.base import ReorderingMethod, apply_reordering, identity_order
from repro.reorder.degsort import degree_sort_order
from repro.reorder.bfsorder import bfs_order
from repro.reorder.gorder import gorder
from repro.reorder.llp import layered_label_propagation_order
from repro.reorder.slashburn import slashburn_order

#: Registry used by the Figure 13 benchmark: name -> ordering function.
REORDERINGS = {
    "Original": identity_order,
    "DegSort": degree_sort_order,
    "BFSOrder": bfs_order,
    "Gorder": gorder,
    "LLP": layered_label_propagation_order,
    "SlashBurn": slashburn_order,
}

__all__ = [
    "ReorderingMethod",
    "apply_reordering",
    "identity_order",
    "degree_sort_order",
    "bfs_order",
    "gorder",
    "layered_label_propagation_order",
    "slashburn_order",
    "REORDERINGS",
]
