"""Gorder-style reordering (Wei et al., SIGMOD 2016).

Gorder greedily builds an ordering that maximises a locality score
``Gscore``: for a sliding window of the ``w`` most recently placed nodes, a
candidate scores the number of (i) common in-neighbours ("sibling" score) and
(ii) direct edges to/from the window.  The full algorithm solves a maxTSP-like
problem; the paper (and this reproduction) use the standard greedy
approximation, which is what delivers the dense neighbour clusters that help
both cache behaviour and, here, CGR interval coverage.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.graph import Graph
from repro.reorder.base import permutation_from_ranking


def gorder(graph: Graph, window: int = 5) -> np.ndarray:
    """Greedy Gorder permutation with a sliding window of ``window`` nodes."""
    if window < 1:
        raise ValueError("window must be >= 1")
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    out_neighbors = [graph.neighbors(v) for v in range(n)]
    in_neighbors: list[list[int]] = [[] for _ in range(n)]
    for source in range(n):
        for target in out_neighbors[source]:
            in_neighbors[target].append(source)

    placed = np.zeros(n, dtype=bool)
    # Lazily-updated max-heap of (negative score, node); stale entries are
    # re-pushed with their current score when popped.
    scores = np.zeros(n, dtype=np.int64)
    heap: list[tuple[int, int]] = [(0, v) for v in range(n)]
    heapq.heapify(heap)

    ranking: list[int] = []
    recent: list[int] = []

    def bump(candidate: int, amount: int = 1) -> None:
        if not placed[candidate]:
            scores[candidate] += amount
            heapq.heappush(heap, (-int(scores[candidate]), candidate))

    # Start from the node with the highest in-degree, as the original
    # algorithm does, so hubs anchor the first window.
    start = max(range(n), key=lambda v: (len(in_neighbors[v]), -v))
    current = start
    while True:
        placed[current] = True
        ranking.append(current)
        recent.append(current)
        if len(recent) > window:
            expired = recent.pop(0)
            # Scores contributed by the expired node decay; an exact
            # implementation would subtract them, the greedy approximation
            # simply lets them age out, which keeps the loop near-linear.
            del expired

        # Nodes sharing an in-neighbour with ``current`` (siblings) and nodes
        # directly connected to it become more attractive.
        for in_nb in in_neighbors[current]:
            bump(in_nb)
            for sibling in out_neighbors[in_nb]:
                bump(sibling)
        for out_nb in out_neighbors[current]:
            bump(out_nb)

        # Pop the best unplaced, up-to-date candidate.
        next_node = None
        while heap:
            neg_score, candidate = heapq.heappop(heap)
            if placed[candidate]:
                continue
            if -neg_score != scores[candidate]:
                heapq.heappush(heap, (-int(scores[candidate]), candidate))
                continue
            next_node = candidate
            break
        if next_node is None:
            remaining = [v for v in range(n) if not placed[v]]
            if not remaining:
                break
            next_node = remaining[0]
        current = next_node

    return permutation_from_ranking(ranking)
