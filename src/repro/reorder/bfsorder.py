"""Breadth-first-search reordering (Apostolico & Drovandi).

Nodes are renumbered in the order a BFS discovers them, restarting from the
lowest-id unvisited node whenever a component is exhausted.  Neighbouring
nodes tend to be discovered near each other, which shortens gaps and creates
consecutive runs -- the effect the ``BFSOrder`` bar of Figure 13 measures.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.graph import Graph
from repro.reorder.base import permutation_from_ranking


def bfs_order(graph: Graph, source: int = 0) -> np.ndarray:
    """Permutation numbering nodes by BFS discovery order.

    Traversal uses the symmetrised neighbourhood so directed graphs with many
    sink nodes still get a useful ordering.
    """
    undirected = graph.to_undirected()
    visited = np.zeros(graph.num_nodes, dtype=bool)
    ranking: list[int] = []
    start_candidates = [source] + list(range(graph.num_nodes))
    for start in start_candidates:
        if start >= graph.num_nodes or visited[start]:
            continue
        queue: deque[int] = deque([start])
        visited[start] = True
        while queue:
            node = queue.popleft()
            ranking.append(node)
            for neighbor in undirected.neighbors(node):
                if not visited[neighbor]:
                    visited[neighbor] = True
                    queue.append(neighbor)
    return permutation_from_ranking(ranking)
