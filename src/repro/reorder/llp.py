"""Layered Label Propagation (LLP) reordering (Boldi et al., WWW 2011).

LLP runs label propagation at several resolutions (controlled by a penalty
parameter ``gamma``): at each resolution, every node repeatedly adopts the
label that maximises ``count(label) - gamma * volume(label)`` among its
neighbours, which yields clusters of decreasing granularity.  The final
ordering concatenates the layers: nodes are sorted by the tuple of labels they
received across resolutions, so nodes that repeatedly ended up in the same
cluster get consecutive ids.  This is the ordering the paper selects
(Table 2) because it maximises compression rate.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.reorder.base import permutation_from_ranking


def _label_propagation_pass(
    undirected: Graph,
    gamma: float,
    max_iterations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One resolution layer: propagate labels with an Absolute-Potts penalty."""
    n = undirected.num_nodes
    labels = np.arange(n, dtype=np.int64)
    volume = np.ones(n, dtype=np.int64)

    order = np.arange(n)
    for _ in range(max_iterations):
        changed = 0
        rng.shuffle(order)
        for node in order:
            neighbors = undirected.neighbors(int(node))
            if not neighbors:
                continue
            counts: dict[int, int] = {}
            for neighbor in neighbors:
                label = int(labels[neighbor])
                counts[label] = counts.get(label, 0) + 1
            current = int(labels[node])
            best_label, best_score = current, float("-inf")
            for label, count in counts.items():
                score = count - gamma * float(volume[label])
                if score > best_score or (score == best_score and label < best_label):
                    best_label, best_score = label, score
            own_score = counts.get(current, 0) - gamma * float(volume[current] - 1)
            if best_score > own_score and best_label != current:
                volume[current] -= 1
                volume[best_label] += 1
                labels[node] = best_label
                changed += 1
        if changed == 0:
            break
    return labels


def layered_label_propagation_order(
    graph: Graph,
    gammas: tuple[float, ...] = (0.0, 0.0625, 0.25, 1.0),
    max_iterations: int = 8,
    seed: int = 17,
) -> np.ndarray:
    """Permutation from layered label propagation across several resolutions."""
    undirected = graph.to_undirected()
    rng = np.random.default_rng(seed)
    layers = [
        _label_propagation_pass(undirected, gamma, max_iterations, rng)
        for gamma in gammas
    ]
    # Sort nodes lexicographically by their labels across layers (coarsest
    # first), breaking ties with the original id to stay deterministic.
    keys = list(zip(*[layer.tolist() for layer in layers]))
    ranking = sorted(range(graph.num_nodes), key=lambda node: (keys[node], node))
    return permutation_from_ranking(ranking)
