"""Shared plumbing for node-reordering algorithms."""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.graph.graph import Graph


class ReorderingMethod(Protocol):
    """A reordering maps a graph to a permutation ``old_id -> new_id``."""

    def __call__(self, graph: Graph) -> np.ndarray: ...


def identity_order(graph: Graph) -> np.ndarray:
    """The "Original" ordering of the paper: keep node ids as they are."""
    return np.arange(graph.num_nodes, dtype=np.int64)


def permutation_from_ranking(ranking: Sequence[int]) -> np.ndarray:
    """Convert a ranking (new position -> old id) into a permutation array.

    Reordering algorithms usually produce the *sequence* in which old ids
    should appear; :meth:`Graph.relabel` wants the inverse mapping
    ``permutation[old_id] = new_id``.  This helper performs the inversion and
    validates that the ranking covers every node exactly once.
    """
    ranking = list(ranking)
    permutation = np.full(len(ranking), -1, dtype=np.int64)
    for new_id, old_id in enumerate(ranking):
        if not 0 <= old_id < len(ranking) or permutation[old_id] != -1:
            raise ValueError("ranking is not a permutation of node ids")
        permutation[old_id] = new_id
    return permutation


def apply_reordering(graph: Graph, method: Callable[[Graph], np.ndarray]) -> Graph:
    """Apply a reordering method and return the relabelled graph."""
    permutation = method(graph)
    return graph.relabel(list(int(p) for p in permutation))
