"""Degree-sort reordering.

The paper's ``DegSort`` baseline: nodes are sorted in descending order of how
often they appear as a neighbour (their in-degree as a target), so the most
frequently referenced nodes receive the smallest ids and therefore the
shortest gap encodings.  Ties are broken by the original id to keep the result
deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.reorder.base import permutation_from_ranking


def degree_sort_order(graph: Graph) -> np.ndarray:
    """Permutation placing frequently-referenced nodes first."""
    reference_counts = np.zeros(graph.num_nodes, dtype=np.int64)
    for _, target in graph.edges():
        reference_counts[target] += 1
    # Sort by descending reference count, then ascending original id.
    ranking = sorted(
        range(graph.num_nodes),
        key=lambda node: (-int(reference_counts[node]), node),
    )
    return permutation_from_ranking(ranking)
