"""SlashBurn reordering (Kang & Faloutsos, ICDM 2011).

SlashBurn repeatedly removes the ``k`` highest-degree hub nodes, assigns them
the lowest remaining ids, pushes the nodes of the small disconnected
components that fall off to the highest remaining ids, and recurses on the
giant component.  The result concentrates the adjacency structure near the
diagonal ("hubs and spokes"), improving locality for compression -- the paper
cites it as one of the reordering options in its related work.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.reorder.base import permutation_from_ranking


def _connected_components(undirected: Graph, active: set[int]) -> list[list[int]]:
    """Connected components of the induced subgraph on ``active`` node ids."""
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in active:
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in undirected.neighbors(node):
                if neighbor in active and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(component)
    return components


def slashburn_order(graph: Graph, hub_fraction: float = 0.02) -> np.ndarray:
    """SlashBurn permutation; ``hub_fraction`` of nodes are burned per round."""
    if not 0 < hub_fraction < 1:
        raise ValueError("hub_fraction must be in (0, 1)")
    undirected = graph.to_undirected()
    n = graph.num_nodes
    k = max(1, int(n * hub_fraction))

    active = set(range(n))
    front: list[int] = []   # hubs, receive the lowest ids in burn order
    back: list[int] = []    # spokes, receive the highest ids (reversed at the end)

    while active:
        if len(active) <= k:
            front.extend(sorted(active, key=lambda v: -undirected.out_degree(v)))
            break
        # Burn the k highest-degree active nodes.
        hubs = sorted(active, key=lambda v: (-undirected.out_degree(v), v))[:k]
        front.extend(hubs)
        active.difference_update(hubs)
        # Nodes outside the giant connected component become spokes.
        components = _connected_components(undirected, active)
        if not components:
            break
        components.sort(key=len, reverse=True)
        for small in components[1:]:
            back.extend(sorted(small))
            active.difference_update(small)

    ranking = front + list(reversed(back))
    return permutation_from_ranking(ranking)
