"""The view manager: registration, refresh policies, delta-stream plumbing.

:class:`ViewManager` owns every materialized view of a registry.  It
subscribes to the registry's :class:`~repro.dynamic.DeltaRecord` stream at
construction, so each effective update batch reaches every view registered
on the mutated graph:

* an **eager** view repairs immediately inside ``apply_updates``;
* a **lazy** view queues the record and drains the queue when its result is
  next read (or on an explicit refresh) -- except that an *approximate*
  PageRank view with ``max_staleness > 0`` may serve its current answer
  unrepaired while it lags the graph by at most that many logical epochs,
  every served result carrying its epoch tag and staleness
  (:class:`~repro.views.base.ViewResult`).

Epochs here are *logical*: the count of effective batches applied to the
graph name, not the overlay epoch (which also moves on compaction) -- so
staleness measures real topology lag, and compacting a graph mid-stream
never dirties a view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.dynamic.updates import DeltaRecord
from repro.obs.trace import NOOP_TRACER

from repro.views.base import GraphContext, MaterializedView, ViewResult, ViewStats
from repro.views.cc import CCView
from repro.views.khop import KHopView
from repro.views.pagerank import PageRankView

if TYPE_CHECKING:  # duck-typed at run time to avoid a service import cycle
    from repro.service.registry import GraphRegistry

#: Registered view kinds, keyed by the ``kind`` argument of
#: :meth:`ViewManager.register_view`.
VIEW_KINDS: dict[str, type[MaterializedView]] = {
    CCView.kind: CCView,
    PageRankView.kind: PageRankView,
    KHopView.kind: KHopView,
}

#: Supported refresh policies.
REFRESH_POLICIES = ("eager", "lazy")


@dataclass
class _Registration:
    """One registered view plus its refresh bookkeeping."""

    view: MaterializedView
    graph: str
    refresh: str
    #: Logical epoch of the graph the view's state reflects.
    fresh_epoch: int
    #: Unconsumed delta records, oldest first (lazy policy only).
    pending: list[DeltaRecord] = field(default_factory=list)


class ViewManager:
    """Materialized views over one registry's graphs, maintained from deltas."""

    def __init__(self, registry: "GraphRegistry") -> None:
        self.registry = registry
        self._registrations: dict[str, _Registration] = {}
        #: Tracing hook (see :attr:`repro.shard.ShardExecutor.tracer`):
        #: view repairs and rebuilds open ``view.repair`` /
        #: ``view.rebuild`` spans under the calling request when the
        #: service's telemetry wiring replaces this no-op default.
        self.tracer = NOOP_TRACER
        registry.subscribe(self.on_updates)

    # -- registration ----------------------------------------------------------

    def register_view(
        self,
        name: str,
        graph: str,
        kind: str,
        params: Mapping[str, Any] | None = None,
        refresh: str = "eager",
    ) -> ViewResult:
        """Materialize a named view of ``graph`` and return its first result.

        ``kind`` selects the view class from :data:`VIEW_KINDS` (``"cc"``,
        ``"pagerank"``, ``"khop"``); ``params`` are kind-specific (see each
        view class).  ``refresh`` is ``"eager"`` (repair inside every
        ``apply_updates``) or ``"lazy"`` (repair on read).  The graph must
        already be registered; CC views force the undirected sibling into
        existence so subsequent batches are mirrored onto it.  View names
        are unique per manager.
        """
        if name in self._registrations:
            raise ValueError(f"view {name!r} is already registered")
        if kind not in VIEW_KINDS:
            known = ", ".join(sorted(VIEW_KINDS))
            raise ValueError(f"unknown view kind {kind!r}; known kinds: {known}")
        if refresh not in REFRESH_POLICIES:
            raise ValueError(
                f"refresh must be one of {REFRESH_POLICIES}, got {refresh!r}"
            )
        context = GraphContext(
            self.registry, graph, undirected=(kind == CCView.kind)
        )
        context.entry  # resolve now: unknown graphs raise KeyError here
        view = VIEW_KINDS[kind](name, context, params or {})
        view.rebuild()
        registration = _Registration(
            view=view,
            graph=graph,
            refresh=refresh,
            fresh_epoch=self.registry.logical_epoch(graph),
        )
        self._registrations[name] = registration
        return self._result(registration)

    def drop_view(self, name: str) -> None:
        """Forget a view (its maintenance stops immediately)."""
        self._require(name)
        del self._registrations[name]

    # -- delta stream ----------------------------------------------------------

    def on_updates(self, record: DeltaRecord) -> None:
        """Registry callback: fan one effective batch out to affected views."""
        for name, registration in self._registrations.items():
            if registration.graph != record.name:
                continue
            if registration.refresh == "eager":
                with self.tracer.span(
                    "view.repair", view=name, mode="eager",
                    epoch=record.epoch,
                ):
                    registration.view.apply_delta(record)
                registration.fresh_epoch = record.epoch
            else:
                registration.pending.append(record)

    def invalidate_graph(self, graph: str) -> None:
        """Rebuild every view of ``graph`` after a wholesale replacement.

        :meth:`~repro.service.GraphRegistry.replace` swaps topology without
        an update stream, so incremental repair has nothing to consume --
        queued deltas are discarded and each view recomputes from the new
        topology.
        """
        for name, registration in self._registrations.items():
            if registration.graph != graph:
                continue
            registration.pending.clear()
            with self.tracer.span(
                "view.rebuild", view=name, reason="graph-replaced"
            ):
                registration.view.rebuild()
            registration.view.stats.full_recomputes += 1
            registration.view.stats.builds -= 1
            registration.fresh_epoch = self.registry.logical_epoch(graph)

    # -- serving ---------------------------------------------------------------

    def view_result(self, name: str) -> ViewResult:
        """The view's current answer, epoch-tagged.

        Lazy views drain their queued deltas first -- unless the view is an
        approximate PageRank within its ``max_staleness`` bound, in which
        case the stale answer is served as-is, tagged with its true epoch
        and staleness.
        """
        registration = self._require(name)
        if registration.pending:
            staleness = self._staleness(registration)
            if 0 < staleness <= self._staleness_budget(registration.view):
                registration.view.stats.stale_serves += 1
            else:
                self._drain(registration)
        return self._result(registration)

    def refresh_view(self, name: str, full: bool = False) -> ViewResult:
        """Force maintenance now: drain queued deltas, or rebuild if ``full``.

        A full refresh recomputes from the live topology -- the way to reset
        an approximate view's accumulated residual error -- and counts as a
        build, not a forced recompute.
        """
        registration = self._require(name)
        if full:
            registration.pending.clear()
            with self.tracer.span(
                "view.rebuild", view=name, reason="full-refresh"
            ):
                registration.view.rebuild()
            registration.fresh_epoch = self.registry.logical_epoch(
                registration.graph
            )
        else:
            self._drain(registration)
        registration.view.stats.refreshes += 1
        return self._result(registration)

    def peek(self, name: str) -> ViewResult:
        """The view's current answer **without** any repair or drain.

        Unlike :meth:`view_result`, queued deltas stay queued and no
        maintenance work runs -- the caller gets whatever the view holds
        right now, tagged with its true epoch and staleness.  This is the
        degraded-serving read of the front door
        (:class:`~repro.server.FrontDoor`): when fresh computation would
        miss a deadline, a possibly-stale answer served in constant time
        beats no answer at all, and the staleness tag lets the caller
        enforce its own budget.
        """
        return self._result(self._require(name))

    def find(
        self,
        graph: str,
        kind: str,
        match: Mapping[str, Any] | None = None,
    ) -> str | None:
        """The name of a registered view matching ``graph``/``kind``/params.

        ``match`` entries are compared against the view's own parameters
        (e.g. ``{"source": 3}`` finds the k-hop or PageRank view rooted at
        node 3); views missing a matched key do not qualify.  Returns the
        first match in registration order, or ``None`` -- the front door's
        lookup for a degradation fallback, so absence must be an answer,
        not an error.
        """
        for name, registration in self._registrations.items():
            if registration.graph != graph:
                continue
            if registration.view.kind != kind:
                continue
            params = registration.view.params
            if match is not None and any(
                key not in params or params[key] != value
                for key, value in match.items()
            ):
                continue
            return name
        return None

    def stats(self, name: str) -> ViewStats:
        """The view's maintenance ledger (live object, counters cumulative)."""
        return self._require(name).view.stats

    # -- introspection ---------------------------------------------------------

    def names(self) -> list[str]:
        """Registered view names, sorted."""
        return sorted(self._registrations)

    def __len__(self) -> int:
        return len(self._registrations)

    def __contains__(self, name: str) -> bool:
        return name in self._registrations

    def aggregate_stats(self) -> ViewStats:
        """All views' ledgers folded into one (for service-level stats)."""
        total = ViewStats()
        for registration in self._registrations.values():
            stats = registration.view.stats
            total.builds += stats.builds
            total.incremental_batches += stats.incremental_batches
            total.skipped_batches += stats.skipped_batches
            total.full_recomputes += stats.full_recomputes
            total.refreshes += stats.refreshes
            total.stale_serves += stats.stale_serves
            total.repair_fanout += stats.repair_fanout
            total.maintenance_cost += stats.maintenance_cost
            total.avoided_cost += stats.avoided_cost
        return total

    # -- internals -------------------------------------------------------------

    def _require(self, name: str) -> _Registration:
        """The registration for ``name``, or :class:`KeyError`."""
        registration = self._registrations.get(name)
        if registration is None:
            known = ", ".join(self.names()) or "<none>"
            raise KeyError(
                f"view {name!r} is not registered; registered views: {known}"
            )
        return registration

    def _drain(self, registration: _Registration) -> None:
        """Consume queued deltas, bringing the view fully fresh.

        The queue is folded into one span record first
        (:meth:`~repro.dynamic.DeltaRecord.coalesce`): the view repairs
        against the graph's *current* adjacency, so replaying records
        one-by-one would pair every queued epoch's old-state derivation
        with the final topology.  One coalesced pass is exactly the eager
        semantics of the whole span applied as a single batch.
        """
        if not registration.pending:
            return
        records = registration.pending
        registration.pending = []
        record = DeltaRecord.coalesce(records)
        with self.tracer.span(
            "view.repair", view=registration.view.name, mode="lazy",
            records=len(records), epoch=record.epoch,
        ):
            registration.view.apply_delta(record)
        registration.fresh_epoch = record.epoch

    def _staleness(self, registration: _Registration) -> int:
        """Logical epochs the view's state lags the graph."""
        return (
            self.registry.logical_epoch(registration.graph)
            - registration.fresh_epoch
        )

    @staticmethod
    def _staleness_budget(view: MaterializedView) -> int:
        """Epochs the view may serve stale (approximate PageRank only)."""
        if isinstance(view, PageRankView) and view.mode == "approx":
            return view.max_staleness
        return 0

    def _result(self, registration: _Registration) -> ViewResult:
        """Package the view's current answer with its epoch tag."""
        return ViewResult(
            name=registration.view.name,
            kind=registration.view.kind,
            value=registration.view.snapshot(),
            epoch=registration.fresh_epoch,
            staleness=self._staleness(registration),
        )


__all__ = ["REFRESH_POLICIES", "VIEW_KINDS", "ViewManager"]
