"""Shared vocabulary of the incremental-view subsystem.

A *materialized view* is a named, resident query answer -- connected
components, personalized PageRank, k-hop BFS levels -- kept consistent with
its registered graph by consuming the :class:`~repro.dynamic.DeltaRecord`
stream :meth:`~repro.service.GraphRegistry.apply_updates` emits, instead of
recomputing from scratch after every batch.  This module defines what every
view kind shares:

* :class:`ViewStats` -- the maintenance ledger (incremental batches vs full
  recomputes, repair fan-out, modelled maintenance cost vs the recompute
  cost it avoided);
* :class:`ViewResult` -- an epoch-tagged answer, carrying the logical epoch
  the value reflects and its staleness in epochs;
* :class:`GraphContext` -- a view's window onto its (possibly sharded)
  resident graph: adjacency reads routed through delta overlays or per-shard
  scatter, full-topology access for rebuilds;
* :class:`MaterializedView` -- the abstract contract the concrete views in
  :mod:`repro.views.cc` / :mod:`repro.views.pagerank` /
  :mod:`repro.views.khop` implement.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Sequence

import numpy as np

from repro.dynamic.updates import DeltaRecord

if TYPE_CHECKING:  # service types are duck-typed at run time (no cycle)
    from repro.service.registry import GraphRegistry, RegisteredGraph


@dataclass
class ViewStats:
    """Cumulative maintenance ledger of one materialized view.

    Attributes:
        builds: from-scratch computations, the registration-time build
            included.
        incremental_batches: delta batches absorbed by in-place repair
            (union-find hooks, residual corrections, frontier re-sweeps).
        skipped_batches: delta batches proven not to affect the view's
            answer and skipped outright (zero maintenance work).
        full_recomputes: delta batches that fell back to a from-scratch
            rebuild (e.g. a deletion severing a k-hop shortest path).
        refreshes: explicit ``refresh_view`` calls.
        stale_serves: results served while lagging the graph (approximate
            mode under a staleness bound).
        repair_fanout: total nodes touched by scoped repair -- the members
            of recomputed components, wave-relaxed nodes, pushed nodes.
        maintenance_cost: modelled units of maintenance work actually
            performed (adjacency entries scanned plus nodes touched).
        avoided_cost: modelled units of from-scratch recompute work that
            maintenance replaced -- ``nodes + edges`` per consumed batch.
            ``avoided_cost / maintenance_cost`` is the incremental win.
    """

    builds: int = 0
    incremental_batches: int = 0
    skipped_batches: int = 0
    full_recomputes: int = 0
    refreshes: int = 0
    stale_serves: int = 0
    repair_fanout: int = 0
    maintenance_cost: float = 0.0
    avoided_cost: float = 0.0

    @property
    def batches_consumed(self) -> int:
        """Delta batches this view has accounted for, however handled."""
        return (
            self.incremental_batches
            + self.skipped_batches
            + self.full_recomputes
        )

    @property
    def savings_ratio(self) -> float:
        """Avoided recompute cost over maintenance cost (``inf`` when free)."""
        if self.maintenance_cost <= 0.0:
            return float("inf") if self.avoided_cost > 0.0 else 1.0
        return self.avoided_cost / self.maintenance_cost


@dataclass(frozen=True)
class ViewResult:
    """One epoch-tagged answer served from a materialized view.

    Attributes:
        name: the view's registered name.
        kind: the view kind (``"cc"`` / ``"pagerank"`` / ``"khop"``).
        value: the view-kind-specific answer (a label array, a
            :class:`~repro.views.pagerank.PageRankValue`, a level array).
        epoch: the graph's logical update epoch the value reflects.
        staleness: how many logical epochs the value lags the graph --
            always 0 for exact views, bounded by the view's
            ``max_staleness`` parameter in approximate mode.
    """

    name: str
    kind: str
    value: Any
    epoch: int
    staleness: int


class GraphContext:
    """A view's window onto its registered graph, resolved per access.

    Entries are resolved through the registry on every use (not captured at
    registration) so views keep working across
    :meth:`~repro.service.GraphRegistry.replace`, which swaps entry objects
    wholesale.  Adjacency reads go through the live serving state -- the
    delta overlay of an unsharded entry, or per-shard scatter
    (:meth:`~repro.shard.executor.ShardExecutor.gather_adjacency`) for a
    sharded one -- so repair reads exactly what queries read.
    """

    def __init__(
        self,
        registry: "GraphRegistry",
        graph: str,
        undirected: bool = False,
    ) -> None:
        self.registry = registry
        self.graph = graph
        self.undirected = undirected

    @property
    def entry(self) -> "RegisteredGraph":
        """The resident entry the view reads (the undirected sibling for CC)."""
        entry = self.registry.resolve(self.graph)
        if self.undirected:
            entry = self.registry.undirected_variant(entry)
        return entry

    @property
    def num_nodes(self) -> int:
        """Node count of the resident graph."""
        return self.entry.num_nodes

    @property
    def num_edges(self) -> int:
        """Live directed edge count of the resident graph."""
        return self.entry.num_edges

    def degrees(self) -> np.ndarray:
        """Out-degree of every node in the synced container."""
        return self.entry.graph.degrees()

    def full_adjacency(self) -> list[list[int]]:
        """The whole live topology, for from-scratch rebuilds."""
        return self.entry.graph.adjacency()

    def gather_adjacency(self, nodes: Sequence[int]) -> dict[int, list[int]]:
        """Live adjacency of ``nodes``, decoded through the serving state.

        Sharded entries route the request to owner shards through the
        executor (one scatter per call, all backends); unsharded entries
        decode through the delta overlay.  Returns sorted neighbour lists
        keyed by node id.
        """
        entry = self.entry
        node_list = [int(node) for node in nodes]
        if entry.executor is not None:
            return entry.executor.gather_adjacency(node_list)
        assert entry.overlay is not None
        return {node: entry.overlay.neighbors(node) for node in node_list}

    def adjacency_of(self, node: int) -> list[int]:
        """The live sorted adjacency list of one node."""
        return self.gather_adjacency([node])[node]

    def recompute_cost(self) -> float:
        """Modelled cost of one from-scratch recompute: nodes plus edges."""
        entry = self.entry
        return float(entry.num_nodes + entry.num_edges)


class MaterializedView(abc.ABC):
    """The contract every incremental view kind implements.

    A view owns its materialized state and a :class:`ViewStats` ledger.  The
    :class:`~repro.views.manager.ViewManager` drives it: one
    :meth:`rebuild` at registration, one :meth:`apply_delta` per effective
    update batch (eagerly or drained lazily), :meth:`snapshot` whenever a
    result is served.
    """

    #: The registry key of the view kind (set by each subclass).
    kind: ClassVar[str] = ""

    def __init__(
        self,
        name: str,
        context: GraphContext,
        params: Mapping[str, Any],
    ) -> None:
        self.name = name
        self.context = context
        self.params = dict(params)
        self.stats = ViewStats()

    @abc.abstractmethod
    def rebuild(self) -> None:
        """Recompute the materialized answer from the live topology."""

    @abc.abstractmethod
    def apply_delta(self, record: DeltaRecord) -> None:
        """Repair the materialized answer from one applied update batch."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """A defensive copy of the current materialized answer."""

    def _charge_batch(self, maintenance_units: float) -> None:
        """Account one consumed batch: work done vs recompute avoided."""
        self.stats.maintenance_cost += maintenance_units
        self.stats.avoided_cost += self.context.recompute_cost()


def unknown_param_check(
    params: Mapping[str, Any], allowed: Sequence[str], kind: str
) -> None:
    """Reject parameters a view kind does not understand (typo guard)."""
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for view kind {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )


__all__ = [
    "GraphContext",
    "MaterializedView",
    "ViewResult",
    "ViewStats",
    "unknown_param_check",
]
