"""Incrementally maintained query views over the delta overlay.

Materialized views keep named query answers -- connected components,
personalized PageRank, k-hop BFS levels -- resident and consistent with
their registered graphs by consuming the update stream
:meth:`~repro.service.GraphRegistry.apply_updates` emits, instead of
recomputing from scratch after every batch (the
answering-queries-under-updates idea of Berkholz et al. applied to the
traversal stack):

* :mod:`repro.views.base` -- the shared contract:
  :class:`MaterializedView`, epoch-tagged :class:`ViewResult`, the
  :class:`ViewStats` maintenance ledger and the :class:`GraphContext`
  adjacency window (per-shard-routed on sharded graphs);
* :mod:`repro.views.cc` -- union-find repair under insertions, bounded
  component-scoped recompute under deletions;
* :mod:`repro.views.pagerank` -- forward-push estimates maintained by
  delta-push residual corrections (approximate mode, with a residual-norm
  error certificate and an epoch staleness bound) or support-scoped replay
  (exact mode, float-identical to from-scratch);
* :mod:`repro.views.khop` -- BFS levels re-swept only from frontier nodes
  whose adjacency changed, with harmful-deletion fallback;
* :mod:`repro.views.manager` -- :class:`ViewManager`: registration,
  eager/lazy refresh policies, delta-stream subscription, replacement
  invalidation.

Quick start -- through the service layer::

    from repro import EdgeUpdate, TraversalService

    service = TraversalService()
    service.register_graph("live", graph)
    service.register_view("cc", "live", kind="cc")
    service.apply_updates("live", [EdgeUpdate.insert(0, 7)])
    labels = service.view_result("cc").value      # repaired, not recomputed
    print(service.view_stats("cc").savings_ratio)
"""

from repro.views.base import (
    GraphContext,
    MaterializedView,
    ViewResult,
    ViewStats,
)
from repro.views.cc import CCView
from repro.views.khop import KHopView
from repro.views.manager import REFRESH_POLICIES, VIEW_KINDS, ViewManager
from repro.views.pagerank import PageRankValue, PageRankView

__all__ = [
    "CCView",
    "GraphContext",
    "KHopView",
    "MaterializedView",
    "PageRankValue",
    "PageRankView",
    "REFRESH_POLICIES",
    "VIEW_KINDS",
    "ViewManager",
    "ViewResult",
    "ViewStats",
]
