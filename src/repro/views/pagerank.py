"""Incrementally maintained personalized-PageRank view.

The materialized answer is the forward-push estimate/residual pair of
:func:`repro.apps.pagerank.personalized_pagerank`.  Both maintenance modes
rest on the forward-push *local invariant* (the dynamic-PPR identity of
Zhang et al.): writing ``R(v) = p(v) / alpha``, every push preserves, for
every node ``v``::

    r(v)  =  [v == s]  +  (1 - alpha) * sum_{u : v in N(u)} R(u) / d(u)  -  R(v)

which is algebraically equivalent to the global invariant
``p_true = p + sum_v r(v) * ppr_v`` on the *current* graph -- hence the
serviceable error bound ``||p - p_true||_1 <= sum_v |r(v)|``.

* **Exact mode** keeps the answer float-for-float equal to a from-scratch
  push (canonical order: sources sorted, neighbours ascending -- the
  :class:`~repro.baselines.cpu.NaiveCPUEngine` trajectory).  A batch whose
  touched nodes all lie outside the view's *support* (nodes with non-zero
  estimate or residual, plus the source) provably cannot alter the push
  trajectory -- the trajectory only ever reads the adjacency and degree of
  support nodes -- so it is skipped with the answer bitwise unchanged;
  anything else replays the push.
* **Approximate mode** repairs in place: when node ``u``'s out-adjacency
  changes from ``N_old`` (degree ``d0``) to ``N_new`` (degree ``d1``), the
  invariant is restored exactly (in real arithmetic) by the delta-push
  correction ``r(w) -= (1-alpha) * R(u)/d0`` for ``w in N_old`` and
  ``r(w) += (1-alpha) * R(u)/d1`` for ``w in N_new``, followed by a signed
  push loop draining residuals past ``epsilon``.  The result carries the
  residual-norm error bound, and under a lazy refresh policy may be served
  stale up to ``max_staleness`` logical epochs (epoch-tagged by the
  manager).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.apps.pagerank import personalized_pagerank
from repro.baselines.cpu import NaiveCPUEngine
from repro.dynamic.updates import DELETE, DeltaRecord, INSERT

from repro.views.base import GraphContext, MaterializedView, unknown_param_check


@dataclass(frozen=True)
class PageRankValue:
    """A served PageRank answer: estimates plus the residual error certificate.

    Attributes:
        source: the personalization source node.
        estimates: per-node PageRank estimates (``float64``).
        residuals: per-node unpushed residual mass (signed in approximate
            mode); by the push invariant, ``error_bound`` certifies
            ``||estimates - truth||_1``.
    """

    source: int
    estimates: np.ndarray
    residuals: np.ndarray

    @property
    def error_bound(self) -> float:
        """L1 distance bound to the exact answer: ``sum(|residuals|)``."""
        return float(np.abs(self.residuals).sum())


class PageRankView(MaterializedView):
    """Personalized PageRank, maintained by delta-push residual propagation.

    Parameters:
        source (required): personalization source node id.
        alpha: teleport probability (default 0.15).
        epsilon: push tolerance (default 1e-4).
        mode: ``"exact"`` (default) -- float-identical to from-scratch
            recompute, with support-scoped batch skipping -- or
            ``"approx"`` -- in-place delta-push repair with a residual-norm
            error bound.
        max_iterations: push-loop iteration cap (default 200).
        max_staleness: logical epochs a *lazy* approximate view may serve
            stale before the manager forces a refresh (default 0).
    """

    kind = "pagerank"

    _ALLOWED = (
        "source", "alpha", "epsilon", "mode", "max_iterations", "max_staleness"
    )

    def __init__(
        self,
        name: str,
        context: GraphContext,
        params: Mapping[str, Any],
    ) -> None:
        unknown_param_check(params, self._ALLOWED, self.kind)
        if "source" not in params:
            raise ValueError("pagerank views require a 'source' parameter")
        super().__init__(name, context, params)
        self.source = int(params["source"])
        self.alpha = float(params.get("alpha", 0.15))
        self.epsilon = float(params.get("epsilon", 1e-4))
        self.mode = str(params.get("mode", "exact"))
        self.max_iterations = int(params.get("max_iterations", 200))
        self.max_staleness = int(params.get("max_staleness", 0))
        if self.mode not in ("exact", "approx"):
            raise ValueError(
                f"mode must be 'exact' or 'approx', got {self.mode!r}"
            )
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be non-negative")
        if not 0 <= self.source < context.num_nodes:
            raise IndexError(
                f"source {self.source} out of range [0, {context.num_nodes})"
            )
        self._estimates = np.zeros(0, dtype=np.float64)
        self._residuals = np.zeros(0, dtype=np.float64)

    # -- building --------------------------------------------------------------

    def rebuild(self) -> None:
        """Run the canonical forward push from scratch on the live graph."""
        entry = self.context.entry
        result = personalized_pagerank(
            NaiveCPUEngine(entry.graph),
            self.source,
            alpha=self.alpha,
            epsilon=self.epsilon,
            degrees=entry.graph.degrees(),
            max_iterations=self.max_iterations,
        )
        self._estimates = result.estimates
        self._residuals = result.residuals
        self.stats.builds += 1

    # -- maintenance -----------------------------------------------------------

    def apply_delta(self, record: DeltaRecord) -> None:
        """Consume one batch: skip, delta-push repair, or exact replay."""
        touched = sorted(record.touched_nodes)
        if self.mode == "exact":
            if self._outside_support(touched):
                # The push trajectory reads only support nodes' adjacency
                # and degrees; the batch changed none of them, so a replay
                # would reproduce this very state bit for bit.
                self.stats.skipped_batches += 1
                self.stats.avoided_cost += self.context.recompute_cost()
                return
            self.rebuild()
            self.stats.builds -= 1  # accounted as a forced recompute instead
            self.stats.full_recomputes += 1
            self.stats.maintenance_cost += self.context.recompute_cost()
            return

        work = self._correct_residuals(record, touched)
        work += self._push()
        self.stats.incremental_batches += 1
        self._charge_batch(work)

    def _outside_support(self, touched: list[int]) -> bool:
        """Whether a batch's touched nodes all miss the push support set."""
        estimates, residuals = self._estimates, self._residuals
        for node in touched:
            if node == self.source:
                return False
            if estimates[node] != 0.0 or residuals[node] != 0.0:
                return False
        return True

    def _correct_residuals(
        self, record: DeltaRecord, touched: list[int]
    ) -> float:
        """Restore the push invariant for every node whose adjacency changed.

        ``N_old`` is reconstructed from the live (post-batch) adjacency and
        the effective op list: per ``(u, w)`` pair, membership before the
        batch is decided by the *first* effective op (a delete means the
        edge existed), membership after by the *last* (an insert means it
        exists now).
        """
        one_minus = 1.0 - self.alpha
        adjacency = self.context.gather_adjacency(touched)
        ops: dict[int, dict[int, list[str]]] = {u: {} for u in touched}
        for update in record.applied:
            ops[update.source].setdefault(update.target, []).append(update.kind)

        work = 0.0
        residuals = self._residuals
        for u in touched:
            new_neighbors = adjacency[u]
            n_new = set(new_neighbors)
            n_old = set(n_new)
            for target, kinds in ops[u].items():
                was_present = kinds[0] == DELETE
                is_present = kinds[-1] == INSERT
                if was_present and not is_present:
                    n_old.add(target)
                elif is_present and not was_present:
                    n_old.discard(target)
            if n_old == n_new:
                continue
            scaled = one_minus * self._estimates[u] / self.alpha
            if scaled != 0.0:
                if n_old:
                    undo = scaled / len(n_old)
                    for w in sorted(n_old):
                        residuals[w] -= undo
                if n_new:
                    redo = scaled / len(n_new)
                    for w in new_neighbors:
                        residuals[w] += redo
            work += float(len(n_old) + len(n_new))
            self.stats.repair_fanout += len(n_old | n_new)
        return work

    def _push(self) -> float:
        """Signed push loop: drain residuals past the epsilon threshold.

        Pushing a negative residual spreads negative shares, so corrections
        that overshot are propagated exactly like fresh mass; every push
        shrinks ``sum(|r|)`` by ``alpha * |rho|``, so the loop terminates.
        """
        alpha, epsilon = self.alpha, self.epsilon
        one_minus = 1.0 - alpha
        estimates, residuals = self._estimates, self._residuals
        degrees = self.context.degrees().astype(np.float64)
        thresholds = epsilon * np.maximum(1.0, degrees)

        work = 0.0
        frontier = sorted(np.flatnonzero(np.abs(residuals) >= thresholds))
        iterations = 0
        cap = max(self.max_iterations, 1) * 16
        while frontier and iterations < cap:
            adjacency = self.context.gather_adjacency(frontier)
            candidates: set[int] = set()
            for node in frontier:
                rho = residuals[node]
                if abs(rho) < thresholds[node]:
                    continue
                estimates[node] += alpha * rho
                residuals[node] = 0.0
                self.stats.repair_fanout += 1
                neighbors = adjacency[node]
                work += 1.0 + len(neighbors)
                if not neighbors:
                    continue  # dangling: mass drops, as in the canonical push
                share = one_minus * rho / len(neighbors)
                for w in neighbors:
                    residuals[w] += share
                    if abs(residuals[w]) >= thresholds[w]:
                        candidates.add(w)
            frontier = sorted(
                node for node in candidates
                if abs(residuals[node]) >= thresholds[node]
            )
            iterations += 1
        return work

    # -- serving ---------------------------------------------------------------

    def snapshot(self) -> PageRankValue:
        """The current answer with its residual error certificate (copies)."""
        return PageRankValue(
            source=self.source,
            estimates=self._estimates.copy(),
            residuals=self._residuals.copy(),
        )


__all__ = ["PageRankValue", "PageRankView"]
