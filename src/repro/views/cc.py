"""Incrementally maintained connected-components view.

The materialized answer is the min-id label array
:func:`repro.apps.cc.reference_components` produces over the undirected
interpretation of the graph -- ``int64``, bit-identical to a from-scratch
recompute at every epoch.  Maintenance follows the classic union-find
split:

* **Insertions** repair in place: each effective undirected insert is one
  ``union`` into the resident forest.  Union-by-minimum-representative keeps
  every root the smallest id of its component, so labels stay the reference
  labels without any relabelling pass.
* **Deletions** trigger *bounded* recompute, scoped to affected components:
  a tombstoned undirected edge can only split the component its endpoints
  lie in, so only the members of those components are re-solved, against
  their live adjacency.  Soundness of the scope: insertions are unioned
  first, making the resident partition *coarser* than the true post-batch
  partition, hence every true component lies wholly inside one resident
  component and member adjacency never escapes the member set.

On sharded graphs the member adjacency is gathered through
:meth:`~repro.shard.executor.ShardExecutor.gather_adjacency` -- one scatter
routed to owner shards -- and the per-shard neighbour lists are merged back
into the coordinator's forest, shard by shard.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from repro.dynamic.updates import DELETE, DeltaRecord, EdgeUpdate, INSERT

from repro.views.base import GraphContext, MaterializedView, unknown_param_check


class _UnionFind:
    """Union-find with path halving and union-by-minimum representative.

    Attaching the larger root under the smaller keeps every root equal to
    the minimum node id of its set, which is exactly the label convention of
    :func:`repro.apps.cc.reference_components` -- so labels read straight
    off the forest, no canonicalisation pass needed.
    """

    def __init__(self, num_nodes: int) -> None:
        self.parent = np.arange(num_nodes, dtype=np.int64)

    def find(self, node: int) -> int:
        """Root of ``node``'s set (the set's minimum id), with path halving."""
        parent = self.parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = int(parent[node])
        return node

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; ``True`` if they were distinct."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        low, high = (root_a, root_b) if root_a < root_b else (root_b, root_a)
        self.parent[high] = low
        return True

    def labels(self) -> np.ndarray:
        """Every node's root -- the reference min-id component labels."""
        return np.array(
            [self.find(node) for node in range(len(self.parent))],
            dtype=np.int64,
        )


class CCView(MaterializedView):
    """Connected components, maintained by union-find repair.

    Parameters: none.  The view reads the registered graph's *undirected
    sibling* (forced into existence at registration), consuming the
    ``mirror_applied`` half of each :class:`~repro.dynamic.DeltaRecord` --
    the batch as translated for the undirected interpretation, where a
    directed delete only lands once no direction of the edge survives.
    """

    kind = "cc"

    def __init__(
        self,
        name: str,
        context: GraphContext,
        params: Mapping[str, Any],
    ) -> None:
        unknown_param_check(params, (), self.kind)
        super().__init__(name, context, params)
        self._forest = _UnionFind(0)

    def rebuild(self) -> None:
        """Solve the whole undirected topology into a fresh forest."""
        adjacency = self.context.full_adjacency()
        forest = _UnionFind(len(adjacency))
        for source, neighbors in enumerate(adjacency):
            for target in neighbors:
                forest.union(source, target)
        self._forest = forest
        self.stats.builds += 1

    def apply_delta(self, record: DeltaRecord) -> None:
        """Union the inserts, then scope-recompute components hit by deletes."""
        inserts = [u for u in record.mirror_applied if u.kind == INSERT]
        deletes = [u for u in record.mirror_applied if u.kind == DELETE]
        work = 0.0

        for update in inserts:
            if self._forest.union(update.source, update.target):
                self.stats.repair_fanout += 2
            work += 1.0

        if deletes:
            work += self._repair_deletions(deletes)
        elif not inserts:
            # The batch changed only directed edges whose undirected
            # interpretation survives (reverse direction still present):
            # the component structure is untouched.
            self.stats.skipped_batches += 1
            self.stats.avoided_cost += self.context.recompute_cost()
            return

        self.stats.incremental_batches += 1
        self._charge_batch(work)

    def _repair_deletions(self, deletes: list[EdgeUpdate]) -> float:
        """Bounded recompute of every component a tombstone touched.

        Members of affected components are gathered in one per-shard-routed
        adjacency scatter, their forest slots reset, and their live edges
        re-unioned -- the coordinator-side merge of the per-shard repair.
        Returns the modelled work units spent.
        """
        affected_roots = {
            self._forest.find(node)
            for update in deletes
            for node in (update.source, update.target)
        }
        parent = self._forest.parent
        members = [
            node
            for node in range(len(parent))
            if self._forest.find(node) in affected_roots
        ]
        member_set = set(members)
        adjacency = self.context.gather_adjacency(members)
        work = float(len(members))
        for node in members:
            parent[node] = node
        for node in members:
            for neighbor in adjacency[node]:
                # The scope argument guarantees closure; a neighbour outside
                # the member set would mean the resident partition was not
                # coarser than the truth, i.e. corrupted state.
                assert neighbor in member_set, (
                    f"CC repair scope violated: edge ({node}, {neighbor}) "
                    "leaves the affected components"
                )
                self._forest.union(node, neighbor)
                work += 1.0
        self.stats.repair_fanout += len(members)
        return work

    def snapshot(self) -> np.ndarray:
        """The current min-id component labels (a copy, ``int64``)."""
        return self._forest.labels()

    def union_forest(self) -> np.ndarray:
        """The raw parent array (for tests inspecting the resident forest)."""
        return self._forest.parent.copy()


def undirected_pairs(updates: Iterable[EdgeUpdate]) -> set[tuple[int, int]]:
    """Distinct ``(min, max)`` endpoint pairs of a mirrored batch."""
    return {
        (min(u.source, u.target), max(u.source, u.target)) for u in updates
    }


__all__ = ["CCView", "undirected_pairs"]
