"""Incrementally maintained k-hop / BFS-level view.

The materialized answer is the BFS level array of
:func:`repro.apps.bfs.reference_bfs_levels` from a fixed source --
optionally clipped to a ``depth`` horizon (levels beyond it report
``UNREACHED``).  Distances are canonical, so the view is bit-identical to a
from-scratch sweep at every epoch.

Maintenance exploits the asymmetry of BFS under updates:

* **Insertions** can only *decrease* distances, and only downstream of the
  inserted edge: every net-inserted edge ``(u, v)`` with
  ``level(u) + 1 < level(v)`` (or ``v`` unreached) seeds a wave that
  re-sweeps outward from the improved frontier nodes, level by level --
  precisely the "re-sweep only from frontier nodes whose adjacency
  changed" contract.  Untouched regions of the graph are never read.
* **Deletions** are *harmless* unless the deleted edge was on some shortest
  path, which for BFS means exactly ``level(v) == level(u) + 1`` with ``u``
  reached (any shortest path steps levels by one, so an edge that does not
  is on none of them).  Harmless deletes cost nothing; a harmful delete
  falls back to one full re-sweep, and the ledger records it.

Wave adjacency is read through the
:class:`~repro.views.base.GraphContext`, so on sharded graphs each
level's frontier gather is routed to owner shards.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.apps.bfs import UNREACHED, reference_bfs_levels
from repro.dynamic.updates import DELETE, DeltaRecord, INSERT

from repro.views.base import GraphContext, MaterializedView, unknown_param_check


class KHopView(MaterializedView):
    """BFS levels from a fixed source, re-swept only where adjacency changed.

    Parameters:
        source (required): the BFS source node id.
        depth: optional horizon ``k``; the served array clips levels
            ``> k`` to ``UNREACHED`` (the full levels are maintained
            internally, so deepening updates stay incremental).
    """

    kind = "khop"

    _ALLOWED = ("source", "depth")

    def __init__(
        self,
        name: str,
        context: GraphContext,
        params: Mapping[str, Any],
    ) -> None:
        unknown_param_check(params, self._ALLOWED, self.kind)
        if "source" not in params:
            raise ValueError("khop views require a 'source' parameter")
        super().__init__(name, context, params)
        self.source = int(params["source"])
        self.depth = params.get("depth")
        if self.depth is not None:
            self.depth = int(self.depth)
            if self.depth < 0:
                raise ValueError(f"depth must be non-negative, got {self.depth}")
        if not 0 <= self.source < context.num_nodes:
            raise IndexError(
                f"source {self.source} out of range [0, {context.num_nodes})"
            )
        self._levels = np.zeros(0, dtype=np.int64)

    # -- building --------------------------------------------------------------

    def rebuild(self) -> None:
        """Full BFS sweep over the live topology."""
        self._levels = reference_bfs_levels(
            self.context.full_adjacency(), self.source
        )
        self.stats.builds += 1

    # -- maintenance -----------------------------------------------------------

    def apply_delta(self, record: DeltaRecord) -> None:
        """Classify the batch's net edge changes, then repair or re-sweep."""
        net_inserts, net_deletes = self._net_changes(record)
        levels = self._levels

        for u, v in net_deletes:
            if levels[u] != UNREACHED and levels[v] == levels[u] + 1:
                # The deleted edge stepped levels by one: it may carry
                # shortest paths, so distances can grow -- re-sweep.
                self.rebuild()
                self.stats.builds -= 1
                self.stats.full_recomputes += 1
                self.stats.maintenance_cost += self.context.recompute_cost()
                return

        seeds: list[int] = []
        for u, v in net_inserts:
            if levels[u] == UNREACHED:
                continue
            candidate = levels[u] + 1
            if levels[v] == UNREACHED or levels[v] > candidate:
                levels[v] = candidate
                seeds.append(v)

        if not seeds:
            # No distance can move: surviving deletes were off every
            # shortest path and no insert improved anything.
            self.stats.skipped_batches += 1
            self.stats.avoided_cost += self.context.recompute_cost()
            return

        work = self._wave(seeds)
        self.stats.incremental_batches += 1
        self._charge_batch(work)

    def _net_changes(
        self, record: DeltaRecord
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Net per-edge effect of the batch's effective op list, in order.

        A pair whose effective ops cancel out (even count) changes nothing;
        otherwise the last op decides the direction.
        """
        ops: dict[tuple[int, int], list[str]] = {}
        order: list[tuple[int, int]] = []
        for update in record.applied:
            pair = (update.source, update.target)
            if pair not in ops:
                ops[pair] = []
                order.append(pair)
            ops[pair].append(update.kind)
        inserts: list[tuple[int, int]] = []
        deletes: list[tuple[int, int]] = []
        for pair in order:
            kinds = ops[pair]
            was_present = kinds[0] == DELETE
            is_present = kinds[-1] == INSERT
            if is_present and not was_present:
                inserts.append(pair)
            elif was_present and not is_present:
                deletes.append(pair)
        return inserts, deletes

    def _wave(self, seeds: list[int]) -> float:
        """Relax improved levels outward, one frontier gather per level.

        Seeds already hold their improved levels.  Processing strictly in
        level order makes each node's final level its true distance over the
        live (post-batch) adjacency, exactly as a full sweep would assign --
        but only nodes the improvements actually reach are ever gathered.
        """
        levels = self._levels
        buckets: dict[int, set[int]] = {}
        for node in seeds:
            buckets.setdefault(int(levels[node]), set()).add(node)

        work = 0.0
        while buckets:
            level = min(buckets)
            frontier = sorted(
                node for node in buckets.pop(level)
                if levels[node] == level  # may have improved further since
            )
            if not frontier:
                continue
            adjacency = self.context.gather_adjacency(frontier)
            self.stats.repair_fanout += len(frontier)
            for node in frontier:
                neighbors = adjacency[node]
                work += 1.0 + len(neighbors)
                candidate = level + 1
                for w in neighbors:
                    if levels[w] == UNREACHED or levels[w] > candidate:
                        levels[w] = candidate
                        buckets.setdefault(candidate, set()).add(w)
        return work

    # -- serving ---------------------------------------------------------------

    def snapshot(self) -> np.ndarray:
        """The current level array, clipped to the depth horizon (a copy)."""
        levels = self._levels.copy()
        if self.depth is not None:
            levels[levels > self.depth] = UNREACHED
        return levels


__all__ = ["KHopView"]
