"""Residual Segmentation traversal (Section 5.2).

When the CGR encoder splits long residual areas into fixed-size segments, the
start offset of every segment is known from ``segNum`` and ``segLen`` alone --
no serial decoding is needed to reach it.  The traversal can therefore hand
*segments*, not nodes, to lanes: a super node with forty segments occupies
forty lane-slots instead of serialising one lane for its whole residual run.
That is the optimization that rescues the twitter-like skewed datasets in
Figure 9 and the segment-length trade-off studied in Figure 14.
"""

from __future__ import annotations

from typing import Sequence

from repro.traversal.context import ExpandContext, NodePlan, ResidualSegmentPlan
from repro.traversal.cursor import CGRCursor
from repro.traversal.strategy import LaneResidualState
from repro.traversal.warp_decode import WarpCentricStrategy


class ResidualSegmentationStrategy(WarpCentricStrategy):
    """Distribute residual segments across lanes (full GCGT configuration)."""

    name = "ResidualSegmentation"

    def residual_phase(self, ctx: ExpandContext, plans: Sequence[NodePlan]) -> None:
        # Every non-empty residual segment of every frontier node becomes an
        # independent task; tasks are served in warp-sized waves.
        """Serve every residual segment as an independent warp-wave task."""
        tasks: list[tuple[int, ResidualSegmentPlan]] = []
        for plan in plans:
            for segment in plan.residual_segments:
                if segment.count > 0:
                    tasks.append((plan.node, segment))
        if not tasks:
            return

        warp_size = ctx.warp.size
        for begin in range(0, len(tasks), warp_size):
            wave = tasks[begin:begin + warp_size]
            self._process_wave(ctx, wave)

    def _process_wave(
        self,
        ctx: ExpandContext,
        wave: Sequence[tuple[int, ResidualSegmentPlan]],
    ) -> None:
        """One wave: each lane decodes one segment; handling is cooperative."""
        # Reading each segment's ``resNum`` header is one extra coalesced-ish
        # access per lane; charge it as a single decode round over the wave.
        ctx.decode_step(
            ctx.pad_to_warp([
                (segment.data_start_bit - segment.count_bits, max(1, segment.count_bits))
                for _, segment in wave
            ])
        )

        # Each lane's full residual stream as ``(neighbor, start, bits)``
        # tuples.  Pre-decoded segments replay straight from the plan; the
        # cursor fallback performs the identical walk, so the charged rounds
        # below do not depend on which path produced the values.
        lanes: list[tuple[int, Sequence[tuple[int, int, int]]]] = []
        rounds = 0
        for source, segment in wave:
            if segment.decoded:
                items: Sequence[tuple[int, int, int]] = segment.decoded
            else:
                state = LaneResidualState(
                    source=source,
                    cursor=CGRCursor(
                        reader=ctx.graph.reader_at(source).fork(segment.data_start_bit),
                        scheme=ctx.graph.config.scheme,
                    ),
                    segments=[segment],
                )
                walked: list[tuple[int, int, int]] = []
                while state.remaining > 0:
                    neighbor, (start, bits) = state.decode_next()
                    walked.append((neighbor, start, bits))
                items = walked
            lanes.append((source, items))
            rounds = max(rounds, len(items))

        # One lock-step decode round per residual index: lane i contributes
        # its i-th residual, exhausted lanes sit divergence-idle.
        staged: list[tuple[int, int]] = []
        for index in range(rounds):
            ranges: list[tuple[int, int] | None] = [None] * ctx.warp.size
            active = 0
            for lane, (source, items) in enumerate(lanes):
                if index < len(items):
                    neighbor, start, bits = items[index]
                    ranges[lane] = (start, bits)
                    staged.append((source, neighbor))
                    active += 1
            ctx.warp.memory.shared_access(active)
            ctx.decode_step(ranges)

        for begin in range(0, len(staged), ctx.warp.size):
            slice_pairs = staged[begin:begin + ctx.warp.size]
            ctx.handle_step(ctx.pad_to_warp(slice_pairs))
