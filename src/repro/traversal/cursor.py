"""Per-lane decoding cursor over a CGR bit stream.

``decodeNum(bitPtr)`` in the paper's pseudo-code reads one VLC value from the
compressed bit array and advances the pointer.  :class:`CGRCursor` is that
pointer for one simulated lane: it wraps a :class:`BitReader` positioned
inside the graph's bit stream, decodes values with the graph's VLC scheme,
applies the shifting rules of Appendix C, and remembers how many bits each
decode consumed so the strategies can charge device-memory traffic for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.bitarray import BitReader
from repro.compression.cgr import CGRGraph
from repro.compression.gaps import from_vlc_value, zigzag_decode
from repro.compression.vlc import VLCScheme


@dataclass
class CGRCursor:
    """A lane's position inside the compressed adjacency data."""

    reader: BitReader
    scheme: VLCScheme

    @classmethod
    def at_node(cls, graph: CGRGraph, node: int) -> "CGRCursor":
        """Cursor positioned at ``bitStart[node]``."""
        return cls(reader=graph.reader_at(node), scheme=graph.config.scheme)

    @property
    def position(self) -> int:
        """Absolute bit offset of the cursor."""
        return self.reader.position

    def fork_at(self, position: int) -> "CGRCursor":
        """An independent cursor over the same stream at ``position``."""
        return CGRCursor(reader=self.reader.fork(position), scheme=self.scheme)

    # -- raw decodes ----------------------------------------------------------

    def decode_num(self) -> tuple[int, int]:
        """Decode one shifted VLC value; return ``(value, bits_consumed)``.

        The returned value already has the "+1" shift removed, i.e. it is the
        non-negative quantity the encoder intended (a count, a gap-minus-one,
        or a zig-zagged first gap).
        """
        start = self.reader.position
        value = from_vlc_value(self.scheme.decode(self.reader))
        return value, self.reader.position - start

    def decode_signed_gap(self, reference: int) -> tuple[int, int]:
        """Decode a zig-zagged first gap and return the absolute node id."""
        raw, bits = self.decode_num()
        return reference + zigzag_decode(raw), bits

    def decode_following_gap(self, previous: int) -> tuple[int, int]:
        """Decode a later gap (stored as ``gap - 1``) and return the node id."""
        raw, bits = self.decode_num()
        return previous + raw + 1, bits
