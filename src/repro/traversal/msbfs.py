"""Bit-parallel multi-source BFS (MS-BFS) on the packed-word substrate.

Point queries -- distance, reachability, k-hop neighbourhoods -- arrive from
*many different sources* over the *same* resident graph.  Running one full
BFS per source decodes every adjacency list once per query; MS-BFS (Then et
al., "The More the Merrier: Efficient Multi-Source BFS", VLDB 2015) packs up
to 64 concurrent searches into one ``uint64`` **lane mask per node** so a
single frontier sweep -- and a single structural decode of each adjacency
list through the existing :class:`~repro.traversal.context.NodePlan` /
:class:`~repro.service.cache.DecodedAdjacencyCache` path -- advances all 64
searches at once:

* ``seen[v]`` -- which lanes (sources) have already discovered ``v``;
* ``frontier[v]`` -- which lanes hold ``v`` in the current frontier;
* one sweep ORs every frontier node's mask into its neighbours, and the
  lanes newly set in ``next[w] & ~seen[w]`` are exactly the searches that
  discover ``w`` at this depth.

The sweep itself runs through the engine's ordinary
``expand(frontier, filter_fn)`` pipeline, so the warp-level cost model, the
strategy ladder and the decoded-plan cache all apply unchanged: the filter
callback is the lane-aware admission of Figure 7(b), admitting a node into
the next frontier exactly once per sweep however many lanes reach it.  BFS
levels are distance-determined, so every lane's extracted
:class:`~repro.apps.bfs.BFSResult` is bit-identical to a sequential
:func:`~repro.apps.bfs.bfs` from the same source -- the differential suite
in ``tests/test_msbfs.py`` pins this across graph families, strategy rungs
and shard counts.

Word width is the natural boundary: masks stay single machine words, which
is the same 64-bit packing the compression engine's
:mod:`~repro.compression.bitarray` words use.  Batches wider than
:data:`LANE_WIDTH` are the caller's concern (the service spills them into
consecutive sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.apps.bfs import BFSResult, UNREACHED
from repro.apps.pipeline import FrontierEngine

#: Concurrent searches one sweep carries: one lane per bit of a uint64 mask.
LANE_WIDTH = 64


@dataclass
class MSBFSResult:
    """Output of one lane-packed multi-source BFS sweep.

    Attributes:
        sources: the batch's source nodes, lane ``i`` serving ``sources[i]``.
        lane_levels: discovery levels, shape ``(len(sources), num_nodes)``;
            row ``i`` is bit-identical to ``bfs(engine, sources[i]).levels``.
        lane_iterations: per-lane frontier iteration counts, each equal to
            the sequential ``bfs()`` iteration count from that source.
        sweeps: shared frontier sweeps the packed traversal executed -- the
            whole batch's cost is proportional to this, not to the sum of
            ``lane_iterations``.
    """

    sources: tuple[int, ...]
    lane_levels: np.ndarray
    lane_iterations: tuple[int, ...]
    sweeps: int

    @property
    def num_lanes(self) -> int:
        """Number of packed searches (== ``len(sources)``)."""
        return len(self.sources)

    def result_for(self, lane: int) -> BFSResult:
        """Extract lane ``lane``'s answer as an independent :class:`BFSResult`.

        The returned object is bit-identical (levels, iterations, source) to
        a sequential :func:`~repro.apps.bfs.bfs` from the lane's source and
        owns its levels array, so callers can mutate results independently.
        """
        if not 0 <= lane < self.num_lanes:
            raise IndexError(
                f"lane {lane} out of range [0, {self.num_lanes})"
            )
        return BFSResult(
            source=self.sources[lane],
            levels=self.lane_levels[lane].copy(),
            iterations=self.lane_iterations[lane],
        )

    def results(self) -> list[BFSResult]:
        """Every lane's answer, in lane (submission) order."""
        return [self.result_for(lane) for lane in range(self.num_lanes)]


def lane_iterations_from_levels(levels: np.ndarray) -> tuple[int, ...]:
    """Per-lane sequential-BFS iteration counts from a lane-level matrix.

    A sequential BFS expands one frontier per level, including the final
    expansion of the deepest frontier that comes back empty, so its
    iteration count is ``deepest level + 1`` -- the source alone still costs
    one iteration.  Shared helper of the in-process sweep and the sharded
    superstep path, so both report iteration counts bit-identical to
    :func:`~repro.apps.bfs.bfs`.
    """
    reached = levels != UNREACHED
    deepest = np.where(reached, levels, 0).max(axis=1)
    return tuple(int(depth) + 1 for depth in deepest)


def validate_sources(sources: Sequence[int], num_nodes: int) -> tuple[int, ...]:
    """Range-check a source batch; returns it as a tuple of plain ints.

    Raises :class:`ValueError` for an empty batch and :class:`IndexError`
    for any out-of-range source (matching :func:`~repro.apps.bfs.bfs`, which
    refuses bad sources before touching any traversal state).  Duplicates
    are fine -- each occupies its own lane.
    """
    batch = tuple(int(source) for source in sources)
    if not batch:
        raise ValueError("MS-BFS needs at least one source")
    for source in batch:
        if not 0 <= source < num_nodes:
            raise IndexError(
                f"source {source} out of range [0, {num_nodes})"
            )
    return batch


def msbfs(engine: FrontierEngine, sources: Sequence[int]) -> MSBFSResult:
    """Run up to :data:`LANE_WIDTH` BFS searches in one lane-packed sweep.

    ``engine`` is any frontier engine -- a resident
    :class:`~repro.traversal.gcgt.GCGTEngine`, a per-query
    :class:`~repro.traversal.gcgt.TraversalSession` (the service path, so
    the sweep's simulated cost accumulates per batch), or a
    :class:`~repro.shard.executor.ShardExecutor` through its generic
    canonical-order ``expand`` (the executor's own
    :meth:`~repro.shard.executor.ShardExecutor.msbfs` is the
    superstep-native path and exchanges lane masks instead).

    Each adjacency list the union frontier touches is decoded **once per
    sweep** for all packed searches; the per-pair filter work is pure word
    arithmetic on the lane masks.  Raises :class:`ValueError` for an empty
    or over-wide batch and :class:`IndexError` for out-of-range sources.
    """
    num_nodes = engine.num_nodes
    batch = validate_sources(sources, num_nodes)
    if len(batch) > LANE_WIDTH:
        raise ValueError(
            f"{len(batch)} sources exceed the {LANE_WIDTH}-lane word width; "
            "split the batch into sweeps"
        )
    lanes = len(batch)

    # Per-node lane masks as plain Python ints: the filter below runs once
    # per decoded (source, neighbour) pair, where int word ops beat numpy
    # scalar boxing.  Levels live in one (lanes, num_nodes) matrix so lane
    # extraction is a row copy.
    seen = [0] * num_nodes
    frontier_mask = [0] * num_nodes
    next_mask = [0] * num_nodes
    lane_levels = np.full((lanes, num_nodes), UNREACHED, dtype=np.int64)
    for lane, source in enumerate(batch):
        bit = 1 << lane
        seen[source] |= bit
        frontier_mask[source] |= bit
        lane_levels[lane, source] = 0

    # The union frontier, each node once, in first-discovery order.
    frontier = list(dict.fromkeys(batch))
    sweeps = 0
    depth = 0

    def admit_new_lanes(parent: int, neighbor: int) -> bool:
        """Lane-aware admission: OR the parent's mask in, admit on first gain."""
        gained = frontier_mask[parent] & ~seen[neighbor]
        if not gained:
            return False
        first_gain = next_mask[neighbor] == 0
        seen[neighbor] |= gained
        next_mask[neighbor] |= gained
        return first_gain

    while frontier:
        depth += 1
        advanced = engine.expand(frontier, admit_new_lanes)
        sweeps += 1
        for node in frontier:
            frontier_mask[node] = 0
        for node in advanced:
            mask = next_mask[node]
            frontier_mask[node] = mask
            next_mask[node] = 0
            while mask:
                low = mask & -mask
                lane_levels[low.bit_length() - 1, node] = depth
                mask ^= low
        frontier = advanced

    return MSBFSResult(
        sources=batch,
        lane_levels=lane_levels,
        lane_iterations=lane_iterations_from_levels(lane_levels),
        sweeps=sweeps,
    )


__all__ = [
    "LANE_WIDTH",
    "MSBFSResult",
    "lane_iterations_from_levels",
    "msbfs",
    "validate_sources",
]
