"""Shared state and primitives for the expansion strategies.

Every scheduling strategy (Algorithms 1-3, warp-centric decoding, residual
segmentation) processes one warp-sized chunk of frontier nodes at a time.
:class:`ExpandContext` carries what they all need -- the CGR graph, the
simulated warp, the application's filter callback and the output queue -- and
provides the three cost-accounted building blocks the paper's step diagrams
(Figure 4) are made of:

* a *frontier load* step (read ``inQueue`` and ``bitStart`` from device memory);
* a *decode* step (lanes read bits of the compressed stream);
* a *handle* step (``appendIfUnvisited``: check/update application state and
  cooperatively append qualified neighbours to ``outQueue``).

:func:`build_node_plan` performs the structural decode shared by all
strategies: where a node's intervals are and where each residual segment
starts, together with the bit extents needed for memory accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compression.cgr import CGRGraph
from repro.compression.gaps import gap_decode_vlc_run
from repro.compression.intervals import Interval
from repro.gpu.warp import Warp
from repro.traversal.cursor import CGRCursor
from repro.traversal.frontier import FrontierQueue

#: Application callback: ``filter_fn(source, neighbor) -> bool``.  A ``True``
#: return means the neighbour passed the filtering step and must be appended
#: to the next frontier (for BFS: it was unvisited and has now been labelled).
FilterFn = Callable[[int, int], bool]

#: How many bits of a VLC code one lock-step round can chew through when a
#: lane decodes *serially* (scan the unary prefix, extract the payload).  The
#: warp-centric decoder amortises this over all lanes, which is exactly the
#: trade "instructions for parallelism" the paper describes in Section 5.1.
DECODE_BITS_PER_ROUND = 8


@dataclass(frozen=True)
class ResidualSegmentPlan:
    """One independently decodable residual run of a node."""

    #: Bit offset of the first residual gap (after the segment's count field).
    data_start_bit: int
    #: Number of residuals in the segment.
    count: int
    #: Bits occupied by the segment's count field (``resNum``), 0 when the
    #: layout stores the count elsewhere (unsegmented graphs).
    count_bits: int = 0
    #: Pre-decoded residuals as ``(neighbor, bit_start, bit_length)`` tuples.
    #: :func:`build_node_plan` fills this so lanes *replay* the decode -- the
    #: strategies still charge every decode round for exactly these bit
    #: ranges, but the host-side bit walking is paid once per plan, which is
    #: once per graph when the plan sits in a decoded-adjacency cache.
    decoded: tuple[tuple[int, int, int], ...] = ()


@dataclass
class NodePlan:
    """Structural decode of one node's compressed adjacency list."""

    node: int
    degree: int
    intervals: list[Interval] = field(default_factory=list)
    #: Bit range of each interval's descriptor (start gap + length), parallel
    #: to ``intervals``; the first entry also covers the per-node header.
    interval_descriptor_bits: list[tuple[int, int]] = field(default_factory=list)
    #: Bit extent of the header + interval descriptors, for memory accounting.
    header_start_bit: int = 0
    header_bits: int = 0
    residual_segments: list[ResidualSegmentPlan] = field(default_factory=list)

    @property
    def interval_coverage(self) -> int:
        """Neighbours covered by intervals."""
        return sum(interval.length for interval in self.intervals)

    @property
    def residual_count(self) -> int:
        """Neighbours stored as residuals, summed over segments."""
        return sum(segment.count for segment in self.residual_segments)


def build_node_plan(graph: CGRGraph, node: int) -> NodePlan:
    """Decode the layout of ``node`` into a :class:`NodePlan` using real cursors."""
    cursor = CGRCursor.at_node(graph, node)
    start = cursor.position
    plan = NodePlan(node=node, degree=0, header_start_bit=start)
    config = graph.config
    min_len = config.min_interval_length
    length_shift = 0 if min_len == float("inf") else int(min_len)

    if config.residual_segment_bits is None:
        degree, _ = cursor.decode_num()
        plan.degree = degree
        if degree == 0:
            plan.header_bits = cursor.position - start
            return plan
        _decode_interval_descriptors(cursor, node, length_shift, plan)
        plan.header_bits = cursor.position - start
        remaining = degree - plan.interval_coverage
        plan.residual_segments.append(
            ResidualSegmentPlan(
                data_start_bit=cursor.position,
                count=remaining,
                decoded=_predecode_residual_run(cursor, node, remaining),
            )
        )
        return plan

    _decode_interval_descriptors(cursor, node, length_shift, plan)
    seg_count, _ = cursor.decode_num()
    plan.header_bits = cursor.position - start
    seg_bits = config.residual_segment_bits
    base = cursor.position
    for index in range(seg_count):
        seg_cursor = cursor.fork_at(base + index * seg_bits)
        count, count_bits = seg_cursor.decode_num()
        plan.residual_segments.append(
            ResidualSegmentPlan(
                data_start_bit=seg_cursor.position,
                count=count,
                count_bits=count_bits,
                decoded=_predecode_residual_run(seg_cursor, node, count),
            )
        )
    plan.degree = plan.interval_coverage + plan.residual_count
    return plan


def _predecode_residual_run(
    cursor: CGRCursor, source: int, count: int
) -> tuple[tuple[int, int, int], ...]:
    """Decode ``count`` residual gaps once, recording value and bit extent.

    ``cursor`` must sit on the first gap; it is advanced past the run (which
    is harmless for every caller -- nothing of the node's layout follows a
    residual run in its segment).  The whole run is read with one bulk
    :meth:`~repro.compression.vlc.VLCScheme.decode_run_positions` call --
    word-level scans and extracts instead of per-bit loops -- and each code's
    bit extent is reconstructed from the returned end offsets, so the decode
    rounds the strategies charge are byte-for-byte what the seed charged.
    """
    if count <= 0:
        return ()
    reader = cursor.reader
    previous_end = reader.position
    values, ends = cursor.scheme.decode_run_positions(reader, count)
    ids = gap_decode_vlc_run(values, source)
    decoded: list[tuple[int, int, int]] = []
    for neighbor, end in zip(ids, ends):
        decoded.append((neighbor, previous_end, end - previous_end))
        previous_end = end
    return tuple(decoded)


def _decode_interval_descriptors(
    cursor: CGRCursor, node: int, length_shift: int, plan: NodePlan
) -> None:
    """Decode ``itvNum`` and the interval (start, length) tuples into ``plan``."""
    header_start = plan.header_start_bit
    interval_count, _ = cursor.decode_num()
    previous_end = node
    for index in range(interval_count):
        descriptor_start = cursor.position if index > 0 else header_start
        if index == 0:
            start, _ = cursor.decode_signed_gap(node)
        else:
            start, _ = cursor.decode_following_gap(previous_end)
        raw_length, _ = cursor.decode_num()
        length = raw_length + length_shift
        plan.intervals.append(Interval(start=start, length=length))
        plan.interval_descriptor_bits.append(
            (descriptor_start, cursor.position - descriptor_start)
        )
        previous_end = start + length - 1


#: Pluggable structural-decode source: ``plan_source(node) -> NodePlan``.
#: Engines that keep decoded plans resident (see
#: :class:`repro.service.cache.DecodedAdjacencyCache`) supply one so hot nodes are
#: decoded once per graph instead of once per query.
PlanSource = Callable[[int], NodePlan]


class ExpandContext:
    """Per-iteration state handed to an expansion strategy."""

    def __init__(
        self,
        graph: CGRGraph,
        warp: Warp,
        filter_fn: FilterFn,
        out_queue: FrontierQueue,
        plan_source: PlanSource | None = None,
    ) -> None:
        self.graph = graph
        self.warp = warp
        self.filter_fn = filter_fn
        self.out_queue = out_queue
        self._plan_source = plan_source

    def node_plan(self, node: int) -> NodePlan:
        """The structural decode of ``node``, via the plan source when set."""
        if self._plan_source is not None:
            return self._plan_source(node)
        return build_node_plan(self.graph, node)

    # -- cost-accounted building blocks ---------------------------------------

    def frontier_load_step(self, nodes: Sequence[int]) -> None:
        """Charge reading the frontier chunk and its ``bitStart`` offsets."""
        if not nodes:
            return
        self.warp.step(active_lanes=len(nodes))
        # inQueue entries are contiguous; bitStart reads are indexed by node id.
        self.warp.memory.access_words(range(len(nodes)), space="frontier_queue")
        self.warp.memory.access_words(
            (int(node) for node in nodes), space="bit_offsets"
        )

    def decode_step(self, bit_ranges: Sequence[tuple[int, int] | None]) -> None:
        """One serial-decode round per lane; ``None`` marks an idle lane.

        Serially decoding a VLC value is a bit-by-bit scan, so its instruction
        cost grows with the code length: the warp is charged
        ``ceil(longest_code / DECODE_BITS_PER_ROUND)`` lock-step rounds, all
        with the same set of active lanes (the others are divergence-idle).
        """
        active = [r for r in bit_ranges if r is not None]
        if not active:
            return
        longest = max(num_bits for _, num_bits in active)
        rounds = max(1, -(-longest // DECODE_BITS_PER_ROUND))
        self.warp.step_rounds(len(active), rounds)
        self.warp.memory.access_bit_ranges(active)

    def handle_step(self, pairs: Sequence[tuple[int, int] | None]) -> int:
        """One ``appendIfUnvisited`` round over per-lane ``(source, neighbor)`` pairs.

        Returns the number of neighbours appended to the output queue.  The
        cost model mirrors the paper: each active lane reads the neighbour's
        label word, the warp runs one exclusive scan in shared memory, and a
        single atomic reserves space in ``outQueue`` for all appended nodes.
        """
        active = [p for p in pairs if p is not None]
        if not active:
            return 0
        self.warp.step(active_lanes=len(active))
        self.warp.memory.access_words(
            (neighbor for _, neighbor in active), space="labels"
        )
        self.warp.memory.shared_access(len(active))

        appended = 0
        for source, neighbor in active:
            if self.filter_fn(source, neighbor):
                self.out_queue.append(neighbor)
                appended += 1
        if appended:
            self.warp.memory.atomic_add(1)
            base = len(self.out_queue.pending) - appended
            self.warp.memory.access_words(
                range(base, base + appended), space="out_queue"
            )
        return appended

    # -- helpers ----------------------------------------------------------------

    def pad_to_warp(self, items: Sequence) -> list:
        """Pad a per-lane list with ``None`` up to the warp width."""
        padded = list(items)
        if len(padded) > self.warp.size:
            raise ValueError(
                f"chunk of {len(padded)} items exceeds warp size {self.warp.size}"
            )
        padded.extend([None] * (self.warp.size - len(padded)))
        return padded
