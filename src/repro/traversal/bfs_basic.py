"""Algorithm 1: the intuitive one-lane-per-frontier strategy.

Each lane independently decodes the compressed adjacency list of its own
frontier node, neighbour by neighbour, exactly as ``BfsBasic`` /
``getNextNeighbor`` in the paper.  Because the lanes of a warp execute in
lock-step, a lane that needs to decode an *interval* descriptor cannot run in
the same round as a lane that needs to decode a *residual* gap -- they sit in
different control branches -- and a lane with a short list idles while its
neighbours grind through long ones.  The simulation reproduces exactly this
behaviour (and therefore the step counts of Figure 4(b)) by building each
lane's operation stream and scheduling it under the divergence rule
"different decode branches serialise; handling unifies".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.traversal.context import ExpandContext, NodePlan
from repro.traversal.strategy import ExpansionStrategy, LaneResidualState

#: Operation kinds, in the priority order the warp scheduler serves them.
OP_DECODE_INTERVAL = "decode_interval"
OP_DECODE_RESIDUAL = "decode_residual"
OP_HANDLE = "handle"

_DECODE_PRIORITY = (OP_DECODE_INTERVAL, OP_DECODE_RESIDUAL)


@dataclass(frozen=True)
class LaneOp:
    """One per-lane micro-operation of the intuitive decoder."""

    kind: str
    #: Bit range read from the compressed stream (decode ops only).
    bit_range: tuple[int, int] | None = None
    #: ``(source, neighbor)`` pair to filter and append (handle ops only).
    pair: tuple[int, int] | None = None


def build_lane_ops(ctx: ExpandContext, plan: NodePlan) -> list[LaneOp]:
    """The exact operation stream one lane executes for one frontier node.

    Mirrors ``getNextNeighbor``: interval neighbours need a descriptor decode
    only when a new interval starts; every residual needs its own gap decode;
    every neighbour ends with a handle (``appendIfUnvisited``) operation.
    """
    ops: list[LaneOp] = []
    source = plan.node
    for interval, descriptor_bits in zip(plan.intervals, plan.interval_descriptor_bits):
        ops.append(LaneOp(OP_DECODE_INTERVAL, bit_range=descriptor_bits))
        for neighbor in interval.nodes():
            ops.append(LaneOp(OP_HANDLE, pair=(source, neighbor)))
    residual_state = LaneResidualState.from_plan(ctx, plan)
    while residual_state.remaining > 0:
        neighbor, bit_range = residual_state.decode_next()
        ops.append(LaneOp(OP_DECODE_RESIDUAL, bit_range=bit_range))
        ops.append(LaneOp(OP_HANDLE, pair=(source, neighbor)))
    return ops


class IntuitiveStrategy(ExpansionStrategy):
    """The naive per-lane scheduling of Algorithm 1."""

    name = "Intuitive"

    def expand_chunk(self, ctx: ExpandContext, chunk: Sequence[int]) -> None:
        """Expand one warp-sized chunk with naive per-lane scheduling."""
        plans = self.load_plans(ctx, chunk)
        streams = [build_lane_ops(ctx, plan) for plan in plans]
        cursors = [0] * len(streams)

        def pending_kinds() -> set[str]:
            kinds = set()
            for lane, stream in enumerate(streams):
                if cursors[lane] < len(stream):
                    kinds.add(stream[cursors[lane]].kind)
            return kinds

        while True:
            kinds = pending_kinds()
            if not kinds:
                break
            # Divergence rule: serve one decode branch at a time; once no lane
            # is waiting on a decode, all lanes at a handle run together.
            kind_to_run = None
            for kind in _DECODE_PRIORITY:
                if kind in kinds:
                    kind_to_run = kind
                    break
            if kind_to_run is None:
                kind_to_run = OP_HANDLE

            selected: list[tuple[int, LaneOp]] = []
            for lane, stream in enumerate(streams):
                if cursors[lane] < len(stream) and stream[cursors[lane]].kind == kind_to_run:
                    selected.append((lane, stream[cursors[lane]]))

            if kind_to_run == OP_HANDLE:
                pairs: list[tuple[int, int] | None] = [None] * ctx.warp.size
                for slot, (lane, op) in enumerate(selected):
                    pairs[slot] = op.pair
                ctx.handle_step(pairs)
            else:
                ranges: list[tuple[int, int] | None] = [None] * ctx.warp.size
                for slot, (lane, op) in enumerate(selected):
                    ranges[slot] = op.bit_range
                ctx.decode_step(ranges)

            for lane, _ in selected:
                cursors[lane] += 1
