"""Algorithm 2: Two-Phase Traversal.

The interval segments and the residual segments of the lanes' adjacency lists
are processed in two separate phases so no lane ever waits on a lane sitting
in the other decode branch:

* **Interval phase** (``handleIntervals`` + ``expandInterval``): in each round
  every lane that still has intervals decodes its next descriptor; then the
  warp collaboratively expands them -- long intervals (length >= warp size)
  are expanded a warp-width slice at a time under an elected leader, and the
  leftovers of all lanes are drained together through a shared-memory buffer
  using an exclusive scan.
* **Residual phase** (``handleResiduals``): every lane decodes and handles its
  own residual gaps round by round; lanes that finish early idle (that is the
  imbalance Task Stealing later removes).
"""

from __future__ import annotations

from typing import Sequence

from repro.traversal.context import ExpandContext, NodePlan
from repro.traversal.strategy import ExpansionStrategy, LaneResidualState


class TwoPhaseStrategy(ExpansionStrategy):
    """Interval phase then residual phase, as in Algorithm 2."""

    name = "TwoPhaseTraversal"

    def expand_chunk(self, ctx: ExpandContext, chunk: Sequence[int]) -> None:
        """Expand one chunk: interval phase, then residual phase."""
        plans = self.load_plans(ctx, chunk)
        self.interval_phase(ctx, plans)
        self.residual_phase(ctx, plans)

    # -- interval phase ---------------------------------------------------------

    def interval_phase(self, ctx: ExpandContext, plans: Sequence[NodePlan]) -> None:
        """Decode and collaboratively expand every lane's intervals."""
        max_intervals = max((len(plan.intervals) for plan in plans), default=0)
        for round_index in range(max_intervals):
            # Each lane with an interval left decodes its next descriptor.
            ranges: list[tuple[int, int] | None] = [None] * ctx.warp.size
            current: list[tuple[int, int, int] | None] = [None] * ctx.warp.size
            for lane, plan in enumerate(plans):
                if round_index < len(plan.intervals):
                    interval = plan.intervals[round_index]
                    ranges[lane] = plan.interval_descriptor_bits[round_index]
                    current[lane] = (plan.node, interval.start, interval.length)
            ctx.decode_step(ranges)
            self._expand_intervals(ctx, current)

    def _expand_intervals(
        self,
        ctx: ExpandContext,
        current: list[tuple[int, int, int] | None],
    ) -> None:
        """``expandInterval``: long-interval stage then short-interval stage."""
        warp_size = ctx.warp.size
        # Stage 1: while any lane holds an interval at least warp_size long,
        # elect it leader and let the whole warp expand one warp-width slice.
        while True:
            lengths = [item[2] if item is not None else 0 for item in current]
            flags = ctx.pad_to_warp([length >= warp_size for length in lengths])
            flags = [bool(f) for f in flags]
            if not ctx.warp.any(flags):
                break
            leader = flags.index(True)
            source, start, length = current[leader]  # type: ignore[misc]
            # Leader broadcast (shfl) then one cooperative handle round.
            ctx.warp.shfl(ctx.pad_to_warp([start] * len(current)), leader)
            pairs = [(source, start + offset) for offset in range(warp_size)]
            ctx.handle_step(pairs)
            current[leader] = (source, start + warp_size, length - warp_size)

        # Stage 2: drain all remaining (short) intervals cooperatively.
        leftovers: list[tuple[int, int]] = []
        lengths = [item[2] if item is not None else 0 for item in current]
        scan_input = [max(0, length) for length in lengths]
        scan_input += [0] * (warp_size - len(scan_input))
        ctx.warp.exclusive_scan(scan_input)
        for item in current:
            if item is None:
                continue
            source, start, length = item
            for offset in range(length):
                leftovers.append((source, start + offset))
        for begin in range(0, len(leftovers), warp_size):
            slice_pairs = leftovers[begin:begin + warp_size]
            ctx.warp.memory.shared_access(len(slice_pairs))
            ctx.handle_step(ctx.pad_to_warp(slice_pairs))

    # -- residual phase ---------------------------------------------------------

    def residual_phase(self, ctx: ExpandContext, plans: Sequence[NodePlan]) -> None:
        """Round-by-round per-lane residual decoding (no stealing)."""
        states = [LaneResidualState.from_plan(ctx, plan) for plan in plans]
        while any(state.remaining > 0 for state in states):
            ranges: list[tuple[int, int] | None] = [None] * ctx.warp.size
            pairs: list[tuple[int, int] | None] = [None] * ctx.warp.size
            for lane, state in enumerate(states):
                if state.remaining > 0:
                    neighbor, bit_range = state.decode_next()
                    ranges[lane] = bit_range
                    pairs[lane] = (state.source, neighbor)
            ctx.decode_step(ranges)
            ctx.handle_step(pairs)
