"""GCGT: GPU-based compressed graph traversal (the paper's core contribution).

The package implements the four scheduling strategies of Sections 4 and 5 on
top of the SIMT simulator, plus the engine that combines them:

* :mod:`bfs_basic` -- Algorithm 1, the intuitive one-lane-per-frontier decoder;
* :mod:`two_phase` -- Algorithm 2, Two-Phase Traversal (intervals then
  residuals, with collaborative interval expansion);
* :mod:`task_stealing` -- Algorithm 3, Task Stealing for the residual phase;
* :mod:`warp_decode` -- Algorithm 4, warp-centric speculative VLC decoding
  with O(log K) validity marking;
* :mod:`segmented` -- Residual Segmentation traversal (Section 5.2);
* :mod:`gcgt` -- :class:`GCGTEngine`, which runs the
  expansion--filtering--contraction pipeline over a CGR graph with any
  combination of the optimizations enabled (the knobs Figure 9 sweeps);
* :mod:`msbfs` -- bit-parallel multi-source BFS: up to 64 concurrent
  searches packed into one ``uint64`` lane mask per node, advanced by a
  single shared frontier sweep through the same pipeline.
"""

from repro.traversal.frontier import FrontierQueue
from repro.traversal.cursor import CGRCursor
from repro.traversal.context import ExpandContext
from repro.traversal.bfs_basic import IntuitiveStrategy
from repro.traversal.two_phase import TwoPhaseStrategy
from repro.traversal.task_stealing import TaskStealingStrategy
from repro.traversal.warp_decode import parallel_vlc_decode, WarpCentricStrategy
from repro.traversal.segmented import ResidualSegmentationStrategy
from repro.traversal.gcgt import (
    GCGTConfig,
    GCGTEngine,
    STRATEGY_LADDER,
    TraversalSession,
)
from repro.traversal.msbfs import LANE_WIDTH, MSBFSResult, msbfs

__all__ = [
    "FrontierQueue",
    "CGRCursor",
    "ExpandContext",
    "IntuitiveStrategy",
    "TwoPhaseStrategy",
    "TaskStealingStrategy",
    "parallel_vlc_decode",
    "WarpCentricStrategy",
    "ResidualSegmentationStrategy",
    "GCGTConfig",
    "GCGTEngine",
    "TraversalSession",
    "STRATEGY_LADDER",
    "LANE_WIDTH",
    "MSBFSResult",
    "msbfs",
]
