"""Base class and shared helpers for expansion strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.traversal.context import (
    ExpandContext,
    NodePlan,
    ResidualSegmentPlan,
)
from repro.traversal.cursor import CGRCursor


class ExpansionStrategy(ABC):
    """Processes one warp-sized chunk of frontier nodes.

    A strategy is responsible for decoding each frontier node's compressed
    adjacency list, passing every neighbour through the application filter and
    appending qualified neighbours to the next frontier -- while charging the
    simulated warp for every lock-step round and memory access it would
    perform on real hardware.  Subclasses differ only in *scheduling*: how the
    decode and handle work is distributed over the lanes.
    """

    #: Display name used by the benchmark figures.
    name: str = "abstract"

    @abstractmethod
    def expand_chunk(self, ctx: ExpandContext, chunk: Sequence[int]) -> None:
        """Expand ``chunk`` (at most ``warp.size`` frontier nodes)."""

    # -- helpers shared by the concrete strategies -----------------------------

    def load_plans(self, ctx: ExpandContext, chunk: Sequence[int]) -> list[NodePlan]:
        """Charge the frontier load and build one :class:`NodePlan` per lane.

        Plans come through :meth:`ExpandContext.node_plan` so a resident
        engine can serve them from its decoded-plan cache; the simulated cost
        accounting is unchanged either way (plans are structural only -- the
        strategies still charge every decode round explicitly).
        """
        ctx.frontier_load_step(chunk)
        return [ctx.node_plan(node) for node in chunk]


@dataclass
class LaneResidualState:
    """Mutable per-lane position inside a node's residual area.

    The residual area of a node may span several segments (after residual
    segmentation); a lane walks them in order.  ``previous`` carries the last
    decoded absolute neighbour id of the *current* segment because gaps are
    relative within a segment and restart from the source node at a segment
    boundary.
    """

    source: int
    cursor: CGRCursor
    segments: list[ResidualSegmentPlan]
    segment_index: int = 0
    decoded_in_segment: int = 0
    previous: int | None = None

    def __post_init__(self) -> None:
        # Maintained counter: the inner scheduling loops poll ``remaining``
        # once per lane per lock-step round, so it must be O(1).
        self._remaining = sum(segment.count for segment in self.segments)

    @classmethod
    def from_plan(cls, ctx: ExpandContext, plan: NodePlan) -> "LaneResidualState":
        """Initialise a lane's residual cursor state from a node plan."""
        state = cls(
            source=plan.node,
            cursor=CGRCursor.at_node(ctx.graph, plan.node),
            segments=[s for s in plan.residual_segments if s.count > 0],
        )
        state._enter_segment()
        return state

    def _enter_segment(self) -> None:
        self.decoded_in_segment = 0
        self.previous = None
        if self.segment_index < len(self.segments):
            segment = self.segments[self.segment_index]
            if not segment.decoded:
                self.cursor = self.cursor.fork_at(segment.data_start_bit)

    @property
    def remaining(self) -> int:
        """Residuals left to decode across all remaining segments."""
        return self._remaining

    def decode_next(self) -> tuple[int, tuple[int, int]]:
        """Decode the next residual; return ``(neighbor, bit_range)``.

        Segments whose plan carries pre-decoded residuals are *replayed* --
        the returned neighbour and bit range are identical to a live cursor
        decode (so the charged decode rounds do not change), without walking
        the bit stream again.
        """
        if self.remaining <= 0:
            raise RuntimeError("no residuals remain for this lane")
        segment = self.segments[self.segment_index]
        if segment.decoded:
            neighbor, start, bits = segment.decoded[self.decoded_in_segment]
        else:
            start = self.cursor.position
            if self.previous is None:
                neighbor, bits = self.cursor.decode_signed_gap(self.source)
            else:
                neighbor, bits = self.cursor.decode_following_gap(self.previous)
        self.previous = neighbor
        self.decoded_in_segment += 1
        self._remaining -= 1
        if self.decoded_in_segment >= segment.count:
            self.segment_index += 1
            self._enter_segment()
        return neighbor, (start, bits)
