"""Algorithm 4: warp-centric parallel VLC decoding, and the strategy using it.

A VLC stream is inherently serial -- the start of a code is only known once
its predecessor has been decoded.  The warp-centric decoder sidesteps this by
speculation: every lane decodes starting from one of the next ``warp_size``
bit positions, and a pointer-jumping pass (Lemma 5.2: O(log2 K) rounds) marks
which of those speculative decodings start at real code boundaries, doubling
the number of identified codes every round starting from the known-valid
position 0.

:class:`WarpCentricStrategy` applies the decoder to frontier nodes whose
residual runs are long enough that serial decoding would dominate the warp's
time; short runs keep using the task-stealing path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.compression.bitarray import BitReader
from repro.compression.gaps import zigzag_decode
from repro.compression.vlc import VLCScheme
from repro.traversal.context import (
    DECODE_BITS_PER_ROUND,
    ExpandContext,
    NodePlan,
    ResidualSegmentPlan,
)
from repro.traversal.strategy import LaneResidualState
from repro.traversal.task_stealing import TaskStealingStrategy

#: Upper bound on a single code word's length used when charging the memory
#: read of one speculative-decode window (gaps in scaled graphs stay well
#: below 2^32, so 64 bits is a safe cap).
MAX_CODE_BITS = 64


@dataclass
class ParallelDecodeResult:
    """Outcome of one speculative-decode window."""

    #: The validated decoded values, in stream order (still carrying the
    #: CGR "+1" shift -- callers undo it when turning gaps into node ids).
    values: list[int]
    #: Absolute bit position where the next window should start.
    next_position: int
    #: Number of pointer-jumping rounds executed (the O(log2 K) cost).
    marking_rounds: int
    #: Lane index (== bit offset within the window) of each validated value.
    valid_offsets: list[int]
    #: Length in bits of the longest validated code word (the speculative
    #: decode round lasts as long as its slowest lane).
    max_code_bits: int = 1


def parallel_vlc_decode(
    reader: BitReader,
    warp_size: int,
    scheme: VLCScheme,
    max_values: int,
) -> ParallelDecodeResult:
    """Decode up to ``max_values`` codes from one ``warp_size``-bit window.

    ``reader`` must be positioned at a valid code boundary.  Lane ``i``
    speculatively decodes starting at ``reader.position + i``; the marking
    pass then identifies which lanes started at true boundaries, exactly as
    in Algorithm 4 / Figure 5 of the paper.
    """
    if warp_size < 1:
        raise ValueError("warp_size must be >= 1")
    if max_values < 1:
        raise ValueError("max_values must be >= 1")
    base = reader.position

    values: list[int | None] = [None] * warp_size
    # ``positions[i]``: offset (relative to the window start) of the first bit
    # after the code decoded from offset ``i``; window-or-beyond when invalid.
    # Each lane's speculative decode is one bulk ``decode_run_positions``
    # call: a word-level unary scan plus one field extract against the packed
    # stream, never a per-bit walk.
    positions: list[int] = [warp_size] * warp_size
    decode_run_positions = scheme.decode_run_positions
    for lane in range(warp_size):
        fork = reader.fork(base + lane)
        try:
            lane_values, lane_ends = decode_run_positions(fork, 1)
        except (EOFError, ValueError):
            continue
        values[lane] = lane_values[0]
        positions[lane] = lane_ends[0] - base

    # Pointer-jumping marking pass (Algorithm 4, lines 9-15): every round,
    # each already-marked lane marks the lane its pointer designates, and
    # *every* lane replaces its pointer by "the pointer of its pointer", so
    # the distance covered doubles per round (Lemma 5.2).
    flags = [False] * warp_size
    flags[0] = True
    jump = list(positions)
    marking_rounds = 0
    max_rounds = 2 * (int(math.log2(warp_size)) + 2) if warp_size > 1 else 1
    while marking_rounds < max_rounds:
        if not any(flags[lane] and jump[lane] < warp_size for lane in range(warp_size)):
            break
        marking_rounds += 1
        previous_jump = list(jump)
        newly_marked = []
        for lane in range(warp_size):
            target = previous_jump[lane]
            if target < warp_size:
                if flags[lane]:
                    newly_marked.append(target)
                jump[lane] = previous_jump[target]
        for target in newly_marked:
            flags[target] = True

    valid_offsets = [
        lane for lane in range(warp_size) if flags[lane] and values[lane] is not None
    ]
    valid_offsets.sort()
    taken = valid_offsets[:max_values]
    decoded_values = [values[offset] for offset in taken]
    if taken:
        next_position = base + positions[taken[-1]]
        max_code_bits = max(positions[offset] - offset for offset in taken)
    else:
        next_position = base
        max_code_bits = 1
    return ParallelDecodeResult(
        values=[int(v) for v in decoded_values if v is not None],
        next_position=next_position,
        marking_rounds=max(1, marking_rounds),
        valid_offsets=taken,
        max_code_bits=max(1, max_code_bits),
    )


class WarpCentricStrategy(TaskStealingStrategy):
    """Task stealing plus warp-centric decoding of long residual runs."""

    name = "Warp-centric"

    def __init__(self, long_residual_threshold: int | None = None) -> None:
        self.long_residual_threshold = long_residual_threshold

    def _threshold(self, ctx: ExpandContext) -> int:
        if self.long_residual_threshold is not None:
            return self.long_residual_threshold
        return 4 * ctx.warp.size

    def residual_phase(self, ctx: ExpandContext, plans: Sequence[NodePlan]) -> None:
        """Warp-decode a *dominant* residual run; task-steal everything else.

        Spreading lanes over many medium runs (task stealing) already keeps
        the warp busy, so dedicating the whole warp to one run only pays off
        when that run dwarfs the rest of the chunk -- the starvation case the
        paper targets.  The dominance test below selects at most one such run
        per chunk.
        """
        threshold = self._threshold(ctx)
        long_plans: list[NodePlan] = []
        short_plans = list(plans)
        counts = sorted((plan.residual_count for plan in plans), reverse=True)
        if counts and counts[0] >= threshold:
            second = counts[1] if len(counts) > 1 else 0
            if counts[0] >= 2 * max(1, second):
                dominant = max(plans, key=lambda plan: plan.residual_count)
                long_plans = [dominant]
                short_plans = [plan for plan in plans if plan is not dominant]

        if short_plans:
            short_states = [LaneResidualState.from_plan(ctx, plan) for plan in short_plans]
            self.stage_one(ctx, short_states)
            self.stage_two(ctx, short_states)

        for plan in long_plans:
            for segment in plan.residual_segments:
                if segment.count > 0:
                    self._warp_decode_segment(ctx, plan.node, segment)

    # -- warp-collaborative decode of one residual run ---------------------------

    def _warp_decode_segment(
        self,
        ctx: ExpandContext,
        source: int,
        segment: ResidualSegmentPlan,
    ) -> None:
        """Decode one residual run window-by-window with the whole warp."""
        scheme = ctx.graph.config.scheme
        warp_size = ctx.warp.size
        position = segment.data_start_bit
        previous: int | None = None
        decoded = 0
        staged: list[tuple[int, int]] = []
        while decoded < segment.count:
            reader = BitReader(ctx.graph.bits, position)
            result = parallel_vlc_decode(
                reader, warp_size, scheme, segment.count - decoded
            )
            # Cost: every lane decodes its speculative candidate concurrently,
            # so the decode phase lasts as long as the longest code in the
            # window; the pointer-jumping rounds then touch only
            # registers/shared memory.
            decode_rounds = max(1, -(-result.max_code_bits // DECODE_BITS_PER_ROUND))
            for _ in range(decode_rounds):
                ctx.warp.step(active_lanes=warp_size)
            ctx.warp.memory.access_bit_ranges([(position, warp_size + MAX_CODE_BITS)])
            for _ in range(result.marking_rounds):
                ctx.warp.step(active_lanes=warp_size)
                ctx.warp.memory.shared_access(warp_size)

            if not result.values:
                # Degenerate window (single code longer than the window and
                # not decodable speculatively): fall back to one serial decode
                # so progress is always made.
                fallback = BitReader(ctx.graph.bits, position)
                value = scheme.decode(fallback)
                result = ParallelDecodeResult(
                    values=[value],
                    next_position=fallback.position,
                    marking_rounds=1,
                    valid_offsets=[0],
                )

            for raw in result.values:
                gap = raw - 1  # undo the CGR "+1" shift
                if previous is None:
                    neighbor = source + zigzag_decode(gap)
                else:
                    neighbor = previous + gap + 1
                previous = neighbor
                staged.append((source, neighbor))
                ctx.warp.memory.shared_access(1)
                decoded += 1
            # Handle a full warp-width batch as soon as one is staged; the
            # remainder is flushed after the whole run is decoded.
            while len(staged) >= warp_size:
                ctx.handle_step(staged[:warp_size])
                staged = staged[warp_size:]
            position = result.next_position
        if staged:
            ctx.handle_step(ctx.pad_to_warp(staged))
