"""Ping-pong frontier queues.

Frontier-based traversal on GPUs keeps two queues: the current iteration reads
frontiers from ``inQueue`` and appends newly qualified nodes to ``outQueue``;
at the end of the iteration the queues swap roles (Section 4.1).  The class
here also models the contention-reduction scheme of ``appendIfUnvisited``:
each warp performs a single atomic reservation for all of its appends, which
the engine charges to the metrics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class FrontierQueue:
    """A pair of node queues that swap every traversal iteration."""

    def __init__(self, initial: Sequence[int] = ()) -> None:
        self._current: list[int] = list(initial)
        self._next: list[int] = []

    # -- current-iteration view ----------------------------------------------

    def __len__(self) -> int:
        return len(self._current)

    def __iter__(self) -> Iterator[int]:
        return iter(self._current)

    def __bool__(self) -> bool:
        return bool(self._current)

    @property
    def current(self) -> list[int]:
        """The frontiers of the running iteration (read-only by convention)."""
        return self._current

    @property
    def pending(self) -> list[int]:
        """Nodes appended so far for the next iteration."""
        return self._next

    def chunks(self, size: int) -> Iterator[list[int]]:
        """Split the current frontier into warp-sized chunks."""
        if size < 1:
            raise ValueError("chunk size must be >= 1")
        for start in range(0, len(self._current), size):
            yield self._current[start:start + size]

    # -- next-iteration construction -------------------------------------------

    def append(self, node: int) -> None:
        """Append one node for the next iteration."""
        self._next.append(node)

    def extend(self, nodes: Iterable[int]) -> None:
        """Append several nodes for the next iteration."""
        self._next.extend(nodes)

    def swap(self) -> None:
        """Make the appended nodes the new current frontier."""
        self._current, self._next = self._next, []

    def reset(self, initial: Sequence[int]) -> None:
        """Restart the queue with a fresh current frontier."""
        self._current = list(initial)
        self._next = []
