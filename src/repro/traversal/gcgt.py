"""The GCGT engine: compressed-graph traversal with configurable optimizations.

:class:`GCGTEngine` owns a CGR-encoded graph resident in (simulated) device
memory and runs the expansion half of the expansion--filtering--contraction
pipeline over it, one frontier iteration at a time.  The filtering step is a
callback supplied by the application (BFS, CC, BC -- see :mod:`repro.apps`),
which keeps the engine application-agnostic exactly as Section 6 describes.

:class:`GCGTConfig` exposes the four optimization knobs of the paper as
booleans; :data:`STRATEGY_LADDER` lists the five cumulative configurations
Figure 9 sweeps (Intuitive -> +TwoPhase -> +TaskStealing -> +Warp-centric ->
+ResidualSegmentation = full GCGT).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Protocol, Sequence

from repro.compression.cgr import CGRConfig, CGRGraph
from repro.gpu.device import GPUDevice
from repro.gpu.metrics import KernelMetrics
from repro.graph.graph import Graph
from repro.traversal.bfs_basic import IntuitiveStrategy
from repro.traversal.context import ExpandContext, FilterFn, NodePlan, build_node_plan
from repro.traversal.frontier import FrontierQueue
from repro.traversal.segmented import ResidualSegmentationStrategy
from repro.traversal.strategy import ExpansionStrategy
from repro.traversal.task_stealing import TaskStealingStrategy
from repro.traversal.two_phase import TwoPhaseStrategy
from repro.traversal.warp_decode import WarpCentricStrategy


@dataclass(frozen=True)
class GCGTConfig:
    """Which scheduling optimizations are enabled, plus the encoding config.

    The defaults correspond to the full GCGT configuration the paper uses in
    its main comparison (Figure 8) with the Table 2 encoding parameters.
    """

    two_phase: bool = True
    task_stealing: bool = True
    warp_centric: bool = True
    residual_segmentation: bool = True
    #: Residual runs at least this long are decoded warp-centrically; ``None``
    #: resolves to twice the warp size at run time.
    long_residual_threshold: int | None = None
    cgr: CGRConfig = field(default_factory=CGRConfig.paper_defaults)

    def effective_cgr_config(self) -> CGRConfig:
        """The encoding config actually used, honouring the segmentation knob."""
        if self.residual_segmentation:
            return self.cgr
        return replace(self.cgr, residual_segment_bits=None)

    def build_strategy(self) -> ExpansionStrategy:
        """Instantiate the most advanced strategy the enabled knobs allow."""
        if self.residual_segmentation:
            return ResidualSegmentationStrategy(self.long_residual_threshold)
        if self.warp_centric:
            return WarpCentricStrategy(self.long_residual_threshold)
        if self.task_stealing:
            return TaskStealingStrategy()
        if self.two_phase:
            return TwoPhaseStrategy()
        return IntuitiveStrategy()

    @property
    def strategy_name(self) -> str:
        """Display name of the strategy the enabled knobs produce."""
        return self.build_strategy().name


#: The cumulative optimization ladder of Figure 9: display name -> config.
STRATEGY_LADDER: dict[str, GCGTConfig] = {
    "Intuitive": GCGTConfig(
        two_phase=False, task_stealing=False, warp_centric=False,
        residual_segmentation=False,
    ),
    "TwoPhaseTraversal": GCGTConfig(
        two_phase=True, task_stealing=False, warp_centric=False,
        residual_segmentation=False,
    ),
    "TaskStealing": GCGTConfig(
        two_phase=True, task_stealing=True, warp_centric=False,
        residual_segmentation=False,
    ),
    "Warp-centric": GCGTConfig(
        two_phase=True, task_stealing=True, warp_centric=True,
        residual_segmentation=False,
    ),
    "ResidualSegmentation": GCGTConfig(
        two_phase=True, task_stealing=True, warp_centric=True,
        residual_segmentation=True,
    ),
}


class PlanCache(Protocol):
    """What an engine needs from a decoded-plan cache (see
    :class:`repro.service.cache.DecodedAdjacencyCache` for the LRU implementation)."""

    def lookup(
        self, node: int, build: Callable[[], NodePlan], epoch: int = 0
    ) -> NodePlan:
        """Return the cached plan for ``node``, building it on a miss.

        ``epoch`` is the node's current mutation epoch (always 0 for static
        graphs); a cached plan from a different epoch is stale and must be
        rebuilt, never served.
        """
        ...  # pragma: no cover - protocol


class TraversalSession:
    """Per-query traversal state drawn from a resident :class:`GCGTEngine`.

    The engine owns everything shareable and expensive -- the encoded CGR
    graph, the device, the scheduling strategy and the decoded-plan cache.  A
    session owns only what is private to one query: its accumulated
    :class:`KernelMetrics`.  Many sessions can run over one engine, which is
    what lets a serving layer (:class:`repro.service.TraversalService`) pay
    the encode cost once per graph instead of once per query.
    """

    def __init__(self, engine: "GCGTEngine") -> None:
        self.engine = engine
        self.metrics = KernelMetrics()

    # -- graph facts (delegated so apps can run on a session directly) --------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the shared resident graph."""
        return self.engine.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges in the shared resident graph."""
        return self.engine.graph.num_edges

    @property
    def compression_rate(self) -> float:
        """Compression rate of the shared resident graph."""
        return self.engine.graph.compression_rate

    # -- traversal -------------------------------------------------------------

    def reset_metrics(self) -> None:
        """Clear accumulated counters before a fresh measurement run."""
        self.metrics = KernelMetrics()

    def expand(self, frontier: Sequence[int], filter_fn: FilterFn) -> list[int]:
        """Run one expansion--filtering--contraction iteration.

        ``frontier`` holds the current iteration's nodes; ``filter_fn`` is the
        application's filtering callback.  Returns the next frontier (the
        contraction output) and accumulates cost counters in :attr:`metrics`.
        """
        engine = self.engine
        iteration_metrics = engine.device.new_metrics()
        warp = engine.device.new_warp(iteration_metrics)
        out_queue = FrontierQueue()
        # Dynamic graphs (repro.dynamic.DeltaOverlay) interpose tombstone
        # suppression between decode and the application filter; static CGR
        # graphs have no wrap_filter hook and pass the filter through as-is.
        if engine._filter_wrapper is not None:
            filter_fn = engine._filter_wrapper(filter_fn)
        ctx = ExpandContext(
            engine.graph, warp, filter_fn, out_queue,
            plan_source=engine.node_plan,
        )
        for begin in range(0, len(frontier), engine.device.warp_size):
            chunk = list(frontier[begin:begin + engine.device.warp_size])
            engine.strategy.expand_chunk(ctx, chunk)
        iteration_metrics.launches += 1
        self.metrics.merge(iteration_metrics)
        return out_queue.pending

    def cost(self) -> float:
        """Scalar elapsed-time proxy of all work since the last reset."""
        return self.engine.device.cost(self.metrics)


class GCGTEngine:
    """Traversal engine over a CGR graph resident on a simulated GPU device.

    The engine models one-time graph residency: encode once, load into device
    memory once, then serve any number of traversals.  Per-query state lives
    in :class:`TraversalSession` objects handed out by :meth:`new_session`;
    for the common single-query use the engine keeps a default session and
    exposes its ``expand``/``metrics``/``cost`` surface directly, so
    ``bfs(engine, source)`` works exactly as before.
    """

    def __init__(
        self,
        cgr_graph: CGRGraph,
        device: GPUDevice | None = None,
        config: GCGTConfig | None = None,
        plan_cache: "PlanCache | None" = None,
    ) -> None:
        self.config = config or GCGTConfig()
        self.device = device or GPUDevice()
        self.graph = cgr_graph
        self.strategy = self.config.build_strategy()
        self.device.check_fits(self.graph.size_in_bytes(), what="CGR graph")
        #: Optional LRU cache of decoded :class:`NodePlan` objects shared by
        #: every session on this engine (duck-typed: ``lookup(node, build)``).
        self.plan_cache = plan_cache
        # Dynamic-graph hooks (repro.dynamic.DeltaOverlay) are fixed for the
        # engine's lifetime; resolve them once rather than per node visit --
        # node_plan is the hot path of every traversal.  Plain CGRGraphs
        # have none, leaving the static fast paths.
        self._merged_plan_builder = getattr(cgr_graph, "build_node_plan", None)
        self._node_epoch_of = getattr(cgr_graph, "node_epoch", None)
        self._filter_wrapper = getattr(cgr_graph, "wrap_filter", None)
        self._default_session = TraversalSession(self)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        config: GCGTConfig | None = None,
        device: GPUDevice | None = None,
        plan_cache: "PlanCache | None" = None,
    ) -> "GCGTEngine":
        """Compress ``graph`` on the host and load the CGR into device memory."""
        config = config or GCGTConfig()
        cgr = CGRGraph.from_adjacency(graph.adjacency(), config.effective_cgr_config())
        return cls(cgr, device=device, config=config, plan_cache=plan_cache)

    # -- basic graph facts ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the resident graph."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges in the resident graph."""
        return self.graph.num_edges

    @property
    def compression_rate(self) -> float:
        """Compression rate of the resident graph (32 / bits-per-edge)."""
        return self.graph.compression_rate

    # -- sessions -------------------------------------------------------------------

    def new_session(self) -> TraversalSession:
        """A fresh per-query traversal session over the resident graph."""
        return TraversalSession(self)

    def node_plan(self, node: int) -> NodePlan:
        """Decode plan of ``node``, served from the plan cache if present.

        Graphs that maintain per-node deltas (:class:`repro.dynamic.
        DeltaOverlay`) supply their own merged-plan builder and a per-node
        mutation epoch; plain :class:`~repro.compression.cgr.CGRGraph`
        objects fall back to the static structural decode at epoch 0.
        """
        merged_builder = self._merged_plan_builder
        if merged_builder is not None:
            build: Callable[[], NodePlan] = lambda: merged_builder(node)
        else:
            build = lambda: build_node_plan(self.graph, node)
        if self.plan_cache is not None:
            epoch_of = self._node_epoch_of
            epoch = epoch_of(node) if epoch_of is not None else 0
            return self.plan_cache.lookup(node, build, epoch)
        return build()

    # -- traversal (default-session surface, kept for single-query callers) --------

    @property
    def metrics(self) -> KernelMetrics:
        """Counters of the default session (single-query compatibility surface)."""
        return self._default_session.metrics

    def reset_metrics(self) -> None:
        """Clear the default session's counters before a fresh measurement run."""
        self._default_session.reset_metrics()

    def expand(self, frontier: Sequence[int], filter_fn: FilterFn) -> list[int]:
        """One expansion iteration on the default session (see
        :meth:`TraversalSession.expand`)."""
        return self._default_session.expand(frontier, filter_fn)

    def cost(self) -> float:
        """Scalar elapsed-time proxy of the default session's work."""
        return self._default_session.cost()
