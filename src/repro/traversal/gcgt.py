"""The GCGT engine: compressed-graph traversal with configurable optimizations.

:class:`GCGTEngine` owns a CGR-encoded graph resident in (simulated) device
memory and runs the expansion half of the expansion--filtering--contraction
pipeline over it, one frontier iteration at a time.  The filtering step is a
callback supplied by the application (BFS, CC, BC -- see :mod:`repro.apps`),
which keeps the engine application-agnostic exactly as Section 6 describes.

:class:`GCGTConfig` exposes the four optimization knobs of the paper as
booleans; :data:`STRATEGY_LADDER` lists the five cumulative configurations
Figure 9 sweeps (Intuitive -> +TwoPhase -> +TaskStealing -> +Warp-centric ->
+ResidualSegmentation = full GCGT).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.compression.cgr import CGRConfig, CGRGraph
from repro.gpu.device import GPUDevice
from repro.gpu.metrics import KernelMetrics
from repro.graph.graph import Graph
from repro.traversal.bfs_basic import IntuitiveStrategy
from repro.traversal.context import ExpandContext, FilterFn
from repro.traversal.frontier import FrontierQueue
from repro.traversal.segmented import ResidualSegmentationStrategy
from repro.traversal.strategy import ExpansionStrategy
from repro.traversal.task_stealing import TaskStealingStrategy
from repro.traversal.two_phase import TwoPhaseStrategy
from repro.traversal.warp_decode import WarpCentricStrategy


@dataclass(frozen=True)
class GCGTConfig:
    """Which scheduling optimizations are enabled, plus the encoding config.

    The defaults correspond to the full GCGT configuration the paper uses in
    its main comparison (Figure 8) with the Table 2 encoding parameters.
    """

    two_phase: bool = True
    task_stealing: bool = True
    warp_centric: bool = True
    residual_segmentation: bool = True
    #: Residual runs at least this long are decoded warp-centrically; ``None``
    #: resolves to twice the warp size at run time.
    long_residual_threshold: int | None = None
    cgr: CGRConfig = field(default_factory=CGRConfig.paper_defaults)

    def effective_cgr_config(self) -> CGRConfig:
        """The encoding config actually used, honouring the segmentation knob."""
        if self.residual_segmentation:
            return self.cgr
        return replace(self.cgr, residual_segment_bits=None)

    def build_strategy(self) -> ExpansionStrategy:
        """Instantiate the most advanced strategy the enabled knobs allow."""
        if self.residual_segmentation:
            return ResidualSegmentationStrategy(self.long_residual_threshold)
        if self.warp_centric:
            return WarpCentricStrategy(self.long_residual_threshold)
        if self.task_stealing:
            return TaskStealingStrategy()
        if self.two_phase:
            return TwoPhaseStrategy()
        return IntuitiveStrategy()

    @property
    def strategy_name(self) -> str:
        return self.build_strategy().name


#: The cumulative optimization ladder of Figure 9: display name -> config.
STRATEGY_LADDER: dict[str, GCGTConfig] = {
    "Intuitive": GCGTConfig(
        two_phase=False, task_stealing=False, warp_centric=False,
        residual_segmentation=False,
    ),
    "TwoPhaseTraversal": GCGTConfig(
        two_phase=True, task_stealing=False, warp_centric=False,
        residual_segmentation=False,
    ),
    "TaskStealing": GCGTConfig(
        two_phase=True, task_stealing=True, warp_centric=False,
        residual_segmentation=False,
    ),
    "Warp-centric": GCGTConfig(
        two_phase=True, task_stealing=True, warp_centric=True,
        residual_segmentation=False,
    ),
    "ResidualSegmentation": GCGTConfig(
        two_phase=True, task_stealing=True, warp_centric=True,
        residual_segmentation=True,
    ),
}


class GCGTEngine:
    """Traversal engine over a CGR graph on a simulated GPU device."""

    def __init__(
        self,
        cgr_graph: CGRGraph,
        device: GPUDevice | None = None,
        config: GCGTConfig | None = None,
    ) -> None:
        self.config = config or GCGTConfig()
        self.device = device or GPUDevice()
        self.graph = cgr_graph
        self.strategy = self.config.build_strategy()
        self.device.check_fits(self.graph.size_in_bytes(), what="CGR graph")
        self.metrics = KernelMetrics()

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        config: GCGTConfig | None = None,
        device: GPUDevice | None = None,
    ) -> "GCGTEngine":
        """Compress ``graph`` on the host and load the CGR into device memory."""
        config = config or GCGTConfig()
        cgr = CGRGraph.from_adjacency(graph.adjacency(), config.effective_cgr_config())
        return cls(cgr, device=device, config=config)

    # -- basic graph facts ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def compression_rate(self) -> float:
        return self.graph.compression_rate

    # -- traversal ------------------------------------------------------------------

    def reset_metrics(self) -> None:
        """Clear accumulated counters before a fresh measurement run."""
        self.metrics = KernelMetrics()

    def expand(self, frontier: Sequence[int], filter_fn: FilterFn) -> list[int]:
        """Run one expansion--filtering--contraction iteration.

        ``frontier`` holds the current iteration's nodes; ``filter_fn`` is the
        application's filtering callback.  Returns the next frontier (the
        contraction output) and accumulates cost counters in :attr:`metrics`.
        """
        iteration_metrics = self.device.new_metrics()
        warp = self.device.new_warp(iteration_metrics)
        out_queue = FrontierQueue()
        ctx = ExpandContext(self.graph, warp, filter_fn, out_queue)
        for begin in range(0, len(frontier), self.device.warp_size):
            chunk = list(frontier[begin:begin + self.device.warp_size])
            self.strategy.expand_chunk(ctx, chunk)
        iteration_metrics.launches += 1
        self.metrics.merge(iteration_metrics)
        return out_queue.pending

    def cost(self) -> float:
        """Scalar elapsed-time proxy of all work since the last reset."""
        return self.device.cost(self.metrics)
