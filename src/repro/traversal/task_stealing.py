"""Algorithm 3: Task Stealing for the residual phase.

Two-Phase Traversal still leaves the residual phase imbalanced: a lane with a
long residual run keeps the whole warp busy while lanes with short runs idle.
``handleResiduals+`` fixes the *handling* half of that cost: once any lane has
drained its own residuals, the remaining lanes decode into a shared-memory
buffer and every lane -- including the idle ones -- cooperatively pushes the
buffered neighbours through ``appendIfUnvisited``.  Decoding itself stays
serial per lane (gaps depend on their predecessors), which is exactly the
limitation the warp-centric decoder and residual segmentation attack next.
"""

from __future__ import annotations

from typing import Sequence

from repro.traversal.context import ExpandContext, NodePlan
from repro.traversal.strategy import LaneResidualState
from repro.traversal.two_phase import TwoPhaseStrategy


class TaskStealingStrategy(TwoPhaseStrategy):
    """Two-Phase Traversal with the stolen-residual handling of Algorithm 3."""

    name = "TaskStealing"

    def residual_phase(self, ctx: ExpandContext, plans: Sequence[NodePlan]) -> None:
        """Run the two stealing stages over the chunk's residual work."""
        states = [LaneResidualState.from_plan(ctx, plan) for plan in plans]
        self.stage_one(ctx, states)
        self.stage_two(ctx, states)

    # -- stage 1: every lane works on its own residuals -------------------------

    def stage_one(self, ctx: ExpandContext, states: Sequence[LaneResidualState]) -> None:
        """While *all* lanes still have residuals, each decodes and handles its own."""
        if not states:
            return
        while all(state.remaining > 0 for state in states):
            ranges: list[tuple[int, int] | None] = [None] * ctx.warp.size
            pairs: list[tuple[int, int] | None] = [None] * ctx.warp.size
            for lane, state in enumerate(states):
                neighbor, bit_range = state.decode_next()
                ranges[lane] = bit_range
                pairs[lane] = (state.source, neighbor)
            ctx.decode_step(ranges)
            ctx.handle_step(pairs)

    # -- stage 2: decode into shared memory, handle cooperatively ---------------

    def stage_two(self, ctx: ExpandContext, states: Sequence[LaneResidualState]) -> None:
        """Loaded lanes keep decoding; idle lanes steal the handling work."""
        remaining = [state.remaining for state in states]
        if not any(count > 0 for count in remaining):
            return
        scan_input = list(remaining) + [0] * (ctx.warp.size - len(remaining))
        ctx.warp.exclusive_scan(scan_input)

        staged: list[tuple[int, int]] = []
        # Decoding rounds: still one residual per loaded lane per round, but
        # the decoded values go to shared memory instead of being handled
        # immediately by the decoding lane.
        while any(state.remaining > 0 for state in states):
            ranges: list[tuple[int, int] | None] = [None] * ctx.warp.size
            for lane, state in enumerate(states):
                if state.remaining > 0:
                    neighbor, bit_range = state.decode_next()
                    ranges[lane] = bit_range
                    staged.append((state.source, neighbor))
                    ctx.warp.memory.shared_access(1)
            ctx.decode_step(ranges)

        # Cooperative handling: all lanes drain the shared buffer warp-width
        # at a time, so the handle cost is ceil(total / warp_size) rounds.
        for begin in range(0, len(staged), ctx.warp.size):
            slice_pairs = staged[begin:begin + ctx.warp.size]
            ctx.handle_step(ctx.pad_to_warp(slice_pairs))
