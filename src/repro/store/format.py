"""Framing primitives of the persistent CGR store's binary files.

Every on-disk artifact of :mod:`repro.store` -- graph files, delta files,
partition files -- shares one container layout, specified byte-for-byte in
``docs/FORMAT.md``:

* an 8-byte **magic** identifying the file kind (:data:`MAGIC_GRAPH`,
  :data:`MAGIC_DELTA`, :data:`MAGIC_PARTITION`);
* a little-endian ``uint32`` **format version** (:data:`FORMAT_VERSION`);
* a sequence of **blocks**, each framed as ``uint64`` payload length (LE),
  the payload bytes, and a ``uint32`` CRC-32 (LE) of the payload.

Block framing gives every reader the same three integrity guarantees for
free: *truncation* is detected because a declared length cannot overrun the
file, *corruption* is detected by the per-block checksum, and *foreign
files* are rejected by the magic before any payload is interpreted.  All
failures raise :class:`StoreFormatError` (or :class:`StoreVersionError` for
a well-formed file written by a newer format), never a partially-built
object.

The helpers here are deliberately dumb -- they move bytes and verify
checksums.  What the blocks *mean* (metadata JSON, offset tables, packed
word payloads) is the business of :mod:`repro.store.files`.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO

#: Magic of a graph file: a frozen CGR encode (offsets + packed words).
MAGIC_GRAPH = b"CGRSTOR1"
#: Magic of a delta file: one overlay's structural state + side stream.
MAGIC_DELTA = b"CGRDELT1"
#: Magic of a partition file: a sharded entry's node-to-shard assignment.
MAGIC_PARTITION = b"CGRPART1"
#: Magic of a CDC log: an append-only stream of framed delta records.
MAGIC_CDC = b"CGRCDC01"

#: Current (and only) revision of the container layout.
FORMAT_VERSION = 1

#: ``uint32`` little-endian (version and CRC fields).
_U32 = struct.Struct("<I")
#: ``uint64`` little-endian (block length fields).
_U64 = struct.Struct("<Q")


class StoreError(ValueError):
    """Base class of every persistent-store failure."""


class StoreFormatError(StoreError):
    """The file is not a well-formed store file (bad magic, truncation,
    checksum mismatch, or self-inconsistent metadata)."""


class StoreVersionError(StoreError):
    """The file is well-formed but written by an unsupported format version."""


class StoreTruncationError(StoreFormatError):
    """The file ends before a declared structure is complete.

    Distinguished from other format errors because an append-only log (the
    CDC stream) treats truncation *at the tail* as a torn final append --
    recoverable by ignoring the partial frame -- while a checksum mismatch
    or bad magic is always corruption.
    """


def write_header(handle: BinaryIO, magic: bytes) -> None:
    """Write the 12-byte file header: magic + format version."""
    if len(magic) != 8:
        raise ValueError(f"magic must be 8 bytes, got {len(magic)}")
    handle.write(magic)
    handle.write(_U32.pack(FORMAT_VERSION))


def write_block(handle: BinaryIO, payload: bytes) -> None:
    """Append one framed block: length, payload, CRC-32."""
    handle.write(_U64.pack(len(payload)))
    handle.write(payload)
    handle.write(_U32.pack(zlib.crc32(payload) & 0xFFFFFFFF))


def write_json_block(handle: BinaryIO, document: dict) -> None:
    """Append a block holding a JSON document (UTF-8, sorted keys)."""
    write_block(
        handle, json.dumps(document, sort_keys=True).encode("utf-8")
    )


class BlockReader:
    """Sequential reader over a store file's header and framed blocks.

    Operates on the whole file image (``bytes`` or a ``memoryview``); block
    payloads are returned as zero-copy ``memoryview`` slices, which is what
    lets :meth:`repro.compression.bitarray.PackedBits.from_buffer` wrap a
    graph file's word payload without copying it.
    """

    def __init__(self, data: bytes, path: str = "<bytes>") -> None:
        self._view = memoryview(data)
        self._offset = 0
        self.path = path

    def _take(self, count: int, what: str) -> memoryview:
        """The next ``count`` bytes, or :class:`StoreFormatError` on truncation."""
        end = self._offset + count
        if end > self._view.nbytes:
            raise StoreTruncationError(
                f"{self.path}: truncated file -- needed {count} bytes for "
                f"{what} at offset {self._offset}, only "
                f"{self._view.nbytes - self._offset} remain"
            )
        chunk = self._view[self._offset:end]
        self._offset = end
        return chunk

    def read_header(self, magic: bytes) -> int:
        """Verify the magic, and return the file's format version.

        Raises :class:`StoreFormatError` on a wrong magic and
        :class:`StoreVersionError` on an unsupported version.
        """
        found = bytes(self._take(8, "magic"))
        if found != magic:
            raise StoreFormatError(
                f"{self.path}: bad magic {found!r}; expected {magic!r}"
            )
        version = _U32.unpack(self._take(4, "format version"))[0]
        if version != FORMAT_VERSION:
            raise StoreVersionError(
                f"{self.path}: format version {version} is not supported "
                f"(this reader understands version {FORMAT_VERSION})"
            )
        return version

    def read_block(self, what: str) -> memoryview:
        """The next block's payload, with its length and CRC verified."""
        length = _U64.unpack(self._take(8, f"{what} block length"))[0]
        payload = self._take(length, f"{what} block payload")
        stored_crc = _U32.unpack(self._take(4, f"{what} block checksum"))[0]
        actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
        if stored_crc != actual_crc:
            raise StoreFormatError(
                f"{self.path}: checksum mismatch in {what} block "
                f"(stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )
        return payload

    def read_json_block(self, what: str) -> dict:
        """The next block parsed as a JSON object."""
        payload = self.read_block(what)
        try:
            document = json.loads(bytes(payload).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreFormatError(
                f"{self.path}: {what} block is not valid JSON: {error}"
            ) from None
        if not isinstance(document, dict):
            raise StoreFormatError(
                f"{self.path}: {what} block must hold a JSON object, "
                f"got {type(document).__name__}"
            )
        return document

    @property
    def at_end(self) -> bool:
        """Whether every byte of the file image has been consumed."""
        return self._offset >= self._view.nbytes

    @property
    def offset(self) -> int:
        """The reader's current absolute byte offset into the file image."""
        return self._offset

    def expect_end(self) -> None:
        """Raise :class:`StoreFormatError` on trailing bytes after the last block."""
        remaining = self._view.nbytes - self._offset
        if remaining:
            raise StoreFormatError(
                f"{self.path}: {remaining} unexpected trailing byte(s) after "
                "the final block"
            )


__all__ = [
    "BlockReader",
    "FORMAT_VERSION",
    "MAGIC_CDC",
    "MAGIC_DELTA",
    "MAGIC_GRAPH",
    "MAGIC_PARTITION",
    "StoreError",
    "StoreFormatError",
    "StoreTruncationError",
    "StoreVersionError",
    "write_block",
    "write_header",
    "write_json_block",
]
