"""Fault-injectable filesystem mutation layer of the persistent store.

Every byte the store (and the lifecycle operations built on it) puts on --
or removes from -- disk flows through the four primitives here:
:func:`publish_bytes` (write-aside + fsync + atomic rename),
:func:`append_bytes` (append + flush + fsync, the CDC log's discipline),
:func:`replace_file` (the manifest pointer swap) and :func:`remove_file`
(retention GC).  Routing all mutations through one choke point is what makes
the crash-consistency harness possible: a test installs a *fault hook* with
:func:`set_fault_hook` and the hook is invoked at every mutation boundary --
before the write, before the fsync, before the rename, before the unlink --
with enough context to simulate a process crash (raise), a torn write
(persist a prefix of the payload, then raise) or a duplicated replay.

The hook protocol is a single callable ``hook(op, path, payload)``:

* ``op`` is one of :data:`MUTATION_OPS` (``"write"``, ``"fsync"``,
  ``"rename"``, ``"append"``, ``"remove"``);
* ``path`` is the affected path (the *destination* for renames);
* ``payload`` is the bytes about to be persisted (``None`` for renames,
  fsyncs of already-written data, and removals).

If the hook returns normally the operation proceeds; if it raises, the
operation does not happen (anything the hook itself wrote -- e.g. a torn
prefix -- stays on disk, exactly like a kernel flushing half a page before
power loss).  Production code never installs a hook; the default is
``None`` and costs one attribute read per boundary.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Optional

#: Operations a fault hook observes, one per mutation boundary.
MUTATION_OPS = ("write", "fsync", "rename", "append", "remove")

#: The installed fault hook, or ``None`` (the production default).
_fault_hook: Optional[Callable[[str, Path, Optional[bytes]], None]] = None


def set_fault_hook(
    hook: Optional[Callable[[str, Path, Optional[bytes]], None]],
) -> Optional[Callable[[str, Path, Optional[bytes]], None]]:
    """Install ``hook`` at every mutation boundary; returns the previous hook.

    Pass ``None`` to uninstall.  Tests must restore the previous hook in a
    ``finally`` block (see the ``FaultInjectingDirectory`` fixture in
    ``tests/lifecycle_harness.py``); the hook is process-global.
    """
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    return previous


def _signal(op: str, path: Path, payload: Optional[bytes]) -> None:
    """Invoke the installed fault hook, if any, at one mutation boundary."""
    hook = _fault_hook
    if hook is not None:
        hook(op, path, payload)


def tmp_name(path: Path) -> Path:
    """The write-aside temp name :func:`publish_bytes` stages ``path`` under."""
    return path.with_name(path.name + ".tmp")


def publish_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically publish ``data`` as ``path``: temp write, fsync, rename.

    The payload is written to a same-directory temp file
    (:func:`tmp_name`), flushed and fsynced, then renamed over ``path`` --
    so a crash at any boundary leaves either the old content (or no file)
    plus at most a ``*.tmp`` stray, never a torn ``path``.  Readers ignore
    temp strays; retention GC removes them.
    """
    path = Path(path)
    tmp = tmp_name(path)
    _signal("write", tmp, bytes(data))
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        _signal("fsync", tmp, None)
        os.fsync(handle.fileno())
    _signal("rename", path, None)
    os.replace(tmp, path)
    return path


def publish_text(path: str | Path, text: str) -> Path:
    """:func:`publish_bytes` for UTF-8 text (manifests, tags)."""
    return publish_bytes(path, text.encode("utf-8"))


def append_bytes(path: str | Path, data: bytes) -> Path:
    """Durably append ``data`` to ``path`` (created if absent).

    One ``append`` boundary before the write and one ``fsync`` boundary
    before the sync; a crash between them can leave a torn tail frame,
    which CDC readers detect (CRC/length framing) and treat as
    end-of-stream.
    """
    path = Path(path)
    _signal("append", path, bytes(data))
    with open(path, "ab") as handle:
        handle.write(data)
        handle.flush()
        _signal("fsync", path, None)
        os.fsync(handle.fileno())
    return path


def replace_file(source: str | Path, target: str | Path) -> None:
    """Atomically rename ``source`` over ``target`` (one boundary)."""
    source, target = Path(source), Path(target)
    _signal("rename", target, None)
    os.replace(source, target)


def remove_file(path: str | Path, missing_ok: bool = False) -> bool:
    """Unlink ``path`` (one ``remove`` boundary); returns whether it existed.

    Retention GC's only deletion primitive, so a fault hook observes every
    file GC would destroy *before* it is gone -- the harness asserts no
    reachable file ever reaches this boundary.
    """
    path = Path(path)
    _signal("remove", path, None)
    try:
        os.unlink(path)
    except FileNotFoundError:
        if missing_ok:
            return False
        raise
    return True


__all__ = [
    "MUTATION_OPS",
    "append_bytes",
    "publish_bytes",
    "publish_text",
    "remove_file",
    "replace_file",
    "set_fault_hook",
    "tmp_name",
]
