"""Epoch snapshots: manifests tying base graph files to per-epoch deltas.

A snapshot directory is an Iceberg-style layout: **immutable base files**
(the frozen CGR encode, written once and shared by every snapshot of the
graph), **per-epoch delta files** (one per overlay, cheap, written at every
snapshot), and small JSON **manifests** naming which files make up each
snapshot.  ``manifest.json`` always points at the latest snapshot; an
epoch-tagged copy (``manifest-epoch-<E>.json``) is kept per snapshot, so
older epochs remain restorable for as long as their delta files exist::

    snapshots/uk/
      manifest.json               <- current pointer (= latest epoch copy)
      manifest-epoch-0.json
      manifest-epoch-3.json
      base.cgr                    <- written once, reused by every epoch
      epoch-0.delta
      epoch-3.delta

Sharded entries keep one base graph file and one delta file **per shard**
(``shard-<i>.cgr`` / ``shard-<i>-epoch-<E>.delta``) plus a partition file,
all sharing the one manifest.

:func:`write_snapshot` captures a live
:class:`~repro.service.registry.RegisteredGraph`;
:func:`restore_entry` rebuilds one from disk -- zero re-encoding, identical
bit-level state, so a restored service answers queries bit-identically to
the service that wrote the snapshot.  The registry fronts both
(:meth:`~repro.service.GraphRegistry.snapshot` /
:meth:`~repro.service.GraphRegistry.restore`), as does the service
(:meth:`~repro.service.TraversalService.save_graph` /
:meth:`~repro.service.TraversalService.load_graph`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.compression.cgr import CGRConfig
from repro.dynamic.compaction import CompactionPolicy
from repro.dynamic.overlay import DeltaOverlay
from repro.gpu.device import GPUDevice
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.service.cache import DecodedAdjacencyCache
from repro.service.registry import RegisteredGraph
from repro.traversal.gcgt import GCGTConfig, GCGTEngine

from repro.store.files import (
    graph_fingerprint,
    read_delta_file,
    read_graph_file,
    read_graph_meta,
    read_partition_file,
    write_delta_file,
    write_graph_file,
    write_partition_file,
)
from repro.store.format import StoreError, StoreFormatError
from repro.store.io import publish_text

if TYPE_CHECKING:  # imported lazily at run time (registry <-> shard layering)
    from repro.shard.executor import ShardExecutor

#: Revision of the manifest schema (independent of the binary file version).
#: Revision 2 adds lifecycle fields: ``logical_epoch`` (the registry's
#: count of effective update batches, which CDC followers resume from) and
#: ``base_generation`` (per base file, bumped by overlay-to-base
#: compaction so rebased epochs get fresh immutable base files).
MANIFEST_VERSION = 2

#: Manifest revisions this reader understands.  Revision-1 manifests
#: (pre-lifecycle) load with ``logical_epoch`` 0 and generation-0 bases.
SUPPORTED_MANIFEST_VERSIONS = (1, 2)

#: The ``kind`` field every manifest must carry.
MANIFEST_KIND = "cgr-snapshot"

#: File names inside a snapshot directory.
MANIFEST_NAME = "manifest.json"
PARTITION_NAME = "partition.bin"


def base_file_name(generation: int, shard: int | None = None) -> str:
    """The immutable base file name for one base generation.

    Generation 0 keeps the original names (``base.cgr`` /
    ``shard-<i>.cgr``); every overlay-to-base compaction bumps the
    generation and writes a fresh ``…-gen-<g>.cgr`` alongside, leaving
    earlier generations in place for the epochs that still reference them
    (retention GC deletes a generation once no manifest or tag reaches it).
    """
    stem = "base" if shard is None else f"shard-{shard}"
    if generation == 0:
        return f"{stem}.cgr"
    return f"{stem}-gen-{generation}.cgr"


def delta_file_name(epoch: int, shard: int | None = None) -> str:
    """The per-epoch delta file name (``epoch-<E>.delta`` and friends)."""
    if shard is None:
        return f"epoch-{epoch}.delta"
    return f"shard-{shard}-epoch-{epoch}.delta"


def engine_config_to_dict(config: GCGTConfig) -> dict:
    """JSON-safe form of a :class:`~repro.traversal.gcgt.GCGTConfig`."""
    return {
        "two_phase": config.two_phase,
        "task_stealing": config.task_stealing,
        "warp_centric": config.warp_centric,
        "residual_segmentation": config.residual_segmentation,
        "long_residual_threshold": config.long_residual_threshold,
        "cgr": config.cgr.to_dict(),
    }


def engine_config_from_dict(data: dict) -> GCGTConfig:
    """Rebuild a :class:`~repro.traversal.gcgt.GCGTConfig` from manifest JSON."""
    return GCGTConfig(
        two_phase=data["two_phase"],
        task_stealing=data["task_stealing"],
        warp_centric=data["warp_centric"],
        residual_segmentation=data["residual_segmentation"],
        long_residual_threshold=data["long_residual_threshold"],
        cgr=CGRConfig.from_dict(data["cgr"]),
    )


#: Fields every manifest must carry; the sharded ones are checked when
#: ``sharded`` is true.
_MANIFEST_REQUIRED = (
    "name", "epoch", "num_nodes", "num_edges", "engine_config",
    "sharded", "base_files", "delta_files",
)
_MANIFEST_REQUIRED_SHARDED = ("shards", "partition_file")


def read_manifest(path: str | Path) -> dict:
    """Load and validate a snapshot manifest (schema + required fields)."""
    path = Path(path)
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise StoreFormatError(f"{path}: manifest is not valid JSON: {error}") from None
    if not isinstance(manifest, dict) or manifest.get("kind") != MANIFEST_KIND:
        raise StoreFormatError(
            f"{path}: not a snapshot manifest (kind must be {MANIFEST_KIND!r})"
        )
    if manifest.get("manifest_version") not in SUPPORTED_MANIFEST_VERSIONS:
        raise StoreFormatError(
            f"{path}: manifest version {manifest.get('manifest_version')!r} "
            f"is not supported (expected one of {SUPPORTED_MANIFEST_VERSIONS})"
        )
    required = _MANIFEST_REQUIRED
    if manifest.get("sharded"):
        required = required + _MANIFEST_REQUIRED_SHARDED
    missing = [field for field in required if manifest.get(field) is None]
    if missing:
        raise StoreFormatError(
            f"{path}: manifest is missing required field(s): "
            f"{', '.join(missing)}"
        )
    if len(manifest["base_files"]) != len(manifest["delta_files"]):
        raise StoreFormatError(
            f"{path}: {len(manifest['base_files'])} base file(s) but "
            f"{len(manifest['delta_files'])} delta file(s)"
        )
    if manifest.get("sharded") and len(manifest["base_files"]) != manifest["shards"]:
        raise StoreFormatError(
            f"{path}: manifest declares {manifest['shards']} shard(s) but "
            f"lists {len(manifest['base_files'])} base file(s)"
        )
    # Normalize the revision-2 lifecycle fields so every caller sees them:
    # revision-1 manifests predate the CDC log (logical epoch 0) and were
    # always written against generation-0 bases.
    if manifest.get("logical_epoch") is None:
        manifest["logical_epoch"] = 0
    if manifest.get("base_generations") is None:
        manifest["base_generations"] = [0] * len(manifest["base_files"])
    if len(manifest["base_generations"]) != len(manifest["base_files"]):
        raise StoreFormatError(
            f"{path}: {len(manifest['base_files'])} base file(s) but "
            f"{len(manifest['base_generations'])} base generation(s)"
        )
    try:
        engine_config_from_dict(manifest["engine_config"])
    except (KeyError, TypeError, ValueError) as error:
        raise StoreFormatError(
            f"{path}: malformed engine_config: {error!r}"
        ) from None
    return manifest


def _partitioner_name(partitioner) -> str | None:
    """The partitioner's registered name, or ``None`` when unknown.

    The snapshotted assignment is always restored verbatim; the name only
    matters if the restored entry is later :meth:`~repro.service.
    GraphRegistry.replace`-d, which re-partitions.  Instances persist by
    their registered strategy name (constructor parameters such as the
    greedy balancer's tolerance are not serialized).
    """
    from repro.shard.partition import PARTITIONERS

    if isinstance(partitioner, str):
        return partitioner
    name = getattr(partitioner, "name", None)
    return name if isinstance(name, str) and name in PARTITIONERS else None


def _write_base_file(path: Path, cgr) -> bool:
    """Write a base graph file, or verify an existing one matches.

    Base files are immutable: a snapshot at a later epoch reuses the file
    written by the first snapshot.  If a file is already present it must
    describe the same encode (counts, bit length, encoding parameters);
    anything else means the directory holds a different graph, which is
    refused rather than silently overwritten.  Returns whether the file
    was newly written (``False`` when a verified copy already existed).
    """
    if not path.exists():
        write_graph_file(path, cgr)
        return True
    meta = read_graph_meta(path)
    fingerprint = graph_fingerprint(cgr)
    if any(meta.get(field) != value for field, value in fingerprint.items()):
        raise StoreError(
            f"{path}: existing base file describes a different graph; "
            "refusing to overwrite -- snapshot into a fresh directory"
        )
    return False


class _StagedWrites:
    """Rollback ledger for one :func:`write_snapshot` call.

    Records every file the call *newly created* (pre-existing base files,
    partition files and epoch deltas are never rolled back) so that an
    in-process failure mid-sequence can unlink the partial snapshot and
    leave the directory exactly as it was -- the all-or-nothing guarantee.
    A process crash skips the rollback, but the pointer-last write order
    means the stray files are unreferenced and retention GC removes them.
    """

    def __init__(self) -> None:
        self.created: list[Path] = []

    def publish(self, path: Path, writer, *args) -> None:
        """Run ``writer(path, *args)``, recording ``path`` if newly created."""
        existed = path.exists()
        writer(path, *args)
        if not existed:
            self.created.append(path)

    def rollback(self) -> None:
        """Best-effort unlink of every newly created file (in-process only)."""
        import contextlib
        import os

        for path in reversed(self.created):
            with contextlib.suppress(OSError):
                os.unlink(path)


def write_snapshot(
    entry: RegisteredGraph,
    directory: str | Path,
    logical_epoch: int = 0,
) -> Path:
    """Capture one registered entry into ``directory``; returns the manifest.

    Base graph files are written on the first snapshot and reused (verified,
    never rewritten) afterwards; a delta file per overlay and a manifest are
    written for the entry's current epoch.  Undirected CC siblings are
    derived state and are not captured -- a restored entry rebuilds its
    sibling lazily on the first CC query, with identical answers.

    The write is all-or-nothing: files are staged through a rollback ledger
    and the ``manifest.json`` pointer is swapped last, so an in-process
    failure unlinks every newly created file (no half-snapshot left behind)
    and a process crash leaves the old pointer intact with only
    unreferenced strays for GC.

    ``logical_epoch`` is the registry's effective-batch counter at capture
    time; a CDC follower resumes the change stream from it.

    Sharded entries must run on the ``inline`` or ``thread`` backend: the
    ``process`` backend's overlays live inside worker processes, where their
    bit-level state cannot be captured.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest: dict = {
        "manifest_version": MANIFEST_VERSION,
        "kind": MANIFEST_KIND,
        "name": entry.name,
        "epoch": entry.epoch,
        "logical_epoch": logical_epoch,
        "num_nodes": entry.num_nodes,
        "num_edges": entry.num_edges,
        "engine_config": engine_config_to_dict(entry.config),
        "sharded": entry.is_sharded,
    }

    staged = _StagedWrites()
    try:
        if entry.is_sharded:
            executor = entry.executor
            assert executor is not None and entry.sharded is not None
            if executor.backend == "process":
                raise StoreError(
                    "cannot snapshot a process-backed sharded entry: per-shard "
                    "overlay state lives in worker processes; register with the "
                    "'inline' or 'thread' backend to snapshot"
                )
            epoch = executor.epoch
            generations = list(executor.base_generations)
            base_files, delta_files = [], []
            staged.publish(
                directory / PARTITION_NAME,
                write_partition_file,
                entry.sharded.partition.assignment,
                entry.sharded.num_shards,
            )
            for shard, overlay in enumerate(executor.overlays):
                base_name = base_file_name(generations[shard], shard)
                delta_name = delta_file_name(epoch, shard)
                staged.publish(
                    directory / base_name, _write_base_file, overlay.base
                )
                staged.publish(directory / delta_name, write_delta_file, overlay)
                base_files.append(base_name)
                delta_files.append(delta_name)
            manifest.update({
                "shards": entry.sharded.num_shards,
                "partitioner": _partitioner_name(entry.partitioner),
                "partition_file": PARTITION_NAME,
                "base_files": base_files,
                "delta_files": delta_files,
                "base_generations": generations,
            })
        else:
            assert entry.overlay is not None and entry.cgr is not None
            epoch = entry.overlay.epoch
            generation = entry.base_generation
            base_name = base_file_name(generation)
            delta_name = delta_file_name(epoch)
            staged.publish(directory / base_name, _write_base_file, entry.cgr)
            staged.publish(directory / delta_name, write_delta_file, entry.overlay)
            manifest.update({
                "shards": None,
                "partitioner": None,
                "partition_file": None,
                "base_files": [base_name],
                "delta_files": [delta_name],
                "base_generations": [generation],
            })

        text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        staged.publish(
            directory / f"manifest-epoch-{manifest['epoch']}.json",
            publish_text, text,
        )
        pointer = directory / MANIFEST_NAME
        # The pointer swap must be atomic (write-aside + rename) and LAST: a
        # crash at any earlier boundary must never leave manifest.json
        # referencing files that were not yet durable -- the Iceberg
        # pointer-commit discipline.
        publish_text(pointer, text)
    except BaseException:
        staged.rollback()
        raise
    return pointer


def resolve_manifest_path(location: str | Path) -> Path:
    """Accept a snapshot directory or a manifest file path; return the manifest."""
    location = Path(location)
    if location.is_dir():
        return location / MANIFEST_NAME
    return location


def restore_entry(
    location: str | Path,
    device: GPUDevice,
    cache_capacity: int = 4096,
    compaction_policy: CompactionPolicy | None = None,
    executor_backend: str = "inline",
    manifest: dict | None = None,
) -> RegisteredGraph:
    """Rebuild a :class:`~repro.service.registry.RegisteredGraph` from disk.

    ``location`` is a snapshot directory (its ``manifest.json`` is used) or
    an explicit manifest path (pass an epoch-tagged manifest to restore an
    older snapshot).  The base payloads are wrapped without re-encoding and
    every overlay's bit-level state is restored exactly, so queries on the
    restored entry -- including simulated costs -- match the snapshotted
    service bit for bit.  Sharded restores accept only the ``inline`` and
    ``thread`` backends (process workers cannot be seeded with overlay
    state).

    ``manifest`` lets a caller that already validated the manifest (the
    registry's pre-restore collision check) pass it through instead of
    re-reading the file; it must be :func:`read_manifest` output for
    ``location``.
    """
    manifest_path = resolve_manifest_path(location)
    if manifest is None:
        manifest = read_manifest(manifest_path)
    directory = manifest_path.parent
    config = engine_config_from_dict(manifest["engine_config"])
    policy = compaction_policy or CompactionPolicy()

    if manifest["sharded"]:
        entry = _restore_sharded(
            manifest, directory, config, device,
            cache_capacity, policy, executor_backend,
        )
    else:
        entry = _restore_unsharded(
            manifest, directory, config, device, cache_capacity, policy
        )

    if entry.num_nodes != manifest["num_nodes"] or entry.num_edges != manifest["num_edges"]:
        if entry.executor is not None:
            entry.executor.close()  # release worker pools before rejecting
        raise StoreFormatError(
            f"{manifest_path}: restored entry has {entry.num_nodes} nodes / "
            f"{entry.num_edges} edges, manifest declares "
            f"{manifest['num_nodes']} / {manifest['num_edges']}"
        )
    return entry


def _restore_unsharded(
    manifest: dict,
    directory: Path,
    config: GCGTConfig,
    device: GPUDevice,
    cache_capacity: int,
    policy: CompactionPolicy,
) -> RegisteredGraph:
    """Load base + delta and stand a resident engine up around them."""
    base = read_graph_file(directory / manifest["base_files"][0])
    _check_encoding(base, config, directory / manifest["base_files"][0])
    overlay = read_delta_file(
        directory / manifest["delta_files"][0], base, policy=policy
    )
    graph = overlay.materialize()
    plan_cache = DecodedAdjacencyCache(cache_capacity)
    engine = GCGTEngine(
        overlay, device=device, config=config, plan_cache=plan_cache
    )
    return RegisteredGraph(
        name=manifest["name"],
        graph=graph,
        config=config,
        cgr=base,
        overlay=overlay,
        engine=engine,
        plan_cache=plan_cache,
        base_generation=manifest["base_generations"][0],
        _csr=CSRGraph.from_graph(graph),
    )


def _restore_sharded(
    manifest: dict,
    directory: Path,
    config: GCGTConfig,
    device: GPUDevice,
    cache_capacity: int,
    policy: CompactionPolicy,
    executor_backend: str,
) -> RegisteredGraph:
    """Load every shard's base + delta and stand the superstep executor up."""
    # Imported here: repro.shard builds on the service cache module, so a
    # top-level import would be circular.
    from repro.shard.executor import ShardExecutor
    from repro.shard.sharded import ShardedCGRGraph

    assignment, num_shards = read_partition_file(
        directory / manifest["partition_file"]
    )
    if num_shards != manifest["shards"]:
        raise StoreFormatError(
            f"{directory / manifest['partition_file']}: partition holds "
            f"{num_shards} shards, manifest declares {manifest['shards']}"
        )
    shards = []
    overlays: list[DeltaOverlay] = []
    for base_name, delta_name in zip(
        manifest["base_files"], manifest["delta_files"]
    ):
        base = read_graph_file(directory / base_name)
        _check_encoding(base, config, directory / base_name)
        shards.append(base)
        overlays.append(
            read_delta_file(directory / delta_name, base, policy=policy)
        )
    adjacency = [
        overlays[int(assignment[node])].neighbors(node)
        for node in range(len(assignment))
    ]
    graph = Graph(adjacency)
    sharded = ShardedCGRGraph.from_restored(
        graph, assignment, shards, config.effective_cgr_config()
    )
    executor = ShardExecutor(
        sharded,
        backend=executor_backend,
        device=device,
        config=config,
        cache_capacity=cache_capacity,
        compaction_policy=policy,
        overlays=overlays,
        initial_epoch=manifest["epoch"],
    )
    executor.base_generations = list(manifest["base_generations"])
    return RegisteredGraph(
        name=manifest["name"],
        graph=graph,
        config=config,
        cgr=None,
        overlay=None,
        engine=None,
        plan_cache=None,
        sharded=sharded,
        executor=executor,
        shards=manifest["shards"],
        partitioner=manifest["partitioner"],
        _csr=CSRGraph.from_graph(graph),
    )


def _check_encoding(base, config: GCGTConfig, path: Path) -> None:
    """Reject a base file whose encoding disagrees with the manifest config."""
    if base.config != config.effective_cgr_config():
        raise StoreFormatError(
            f"{path}: base file encoding {base.config.to_dict()} does not "
            "match the manifest's engine configuration "
            f"{config.effective_cgr_config().to_dict()}"
        )


__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "PARTITION_NAME",
    "SUPPORTED_MANIFEST_VERSIONS",
    "base_file_name",
    "delta_file_name",
    "engine_config_from_dict",
    "engine_config_to_dict",
    "read_manifest",
    "resolve_manifest_path",
    "restore_entry",
    "write_snapshot",
]
