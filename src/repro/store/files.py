"""Writers and readers for the store's three binary file kinds.

All three files use the framed-block container of
:mod:`repro.store.format` (magic, version, length/CRC-framed blocks) and are
specified byte-for-byte in ``docs/FORMAT.md``:

* **graph files** (``*.cgr``) -- a frozen CGR encode: a metadata JSON block
  (counts, bit length, encoding parameters), the per-node ``bitStart[]``
  offset table, and the packed 64-bit word payload written *verbatim* from
  the in-memory :class:`~repro.compression.bitarray.PackedBits`.  Loading
  wraps the payload words back into a :class:`~repro.compression.cgr.
  CGRGraph` with :meth:`~repro.compression.bitarray.PackedBits.from_buffer`
  -- no re-encode, no VLC decode, and no bump of the process-wide
  :func:`~repro.compression.cgr.encode_call_count`; the cold-start speedup
  this buys over re-encoding is gated by
  ``benchmarks/test_store_throughput.py``;
* **delta files** (``*.delta``) -- one
  :class:`~repro.dynamic.DeltaOverlay`'s structural state
  (:meth:`~repro.dynamic.DeltaOverlay.state_dict`) plus its side stream's
  words, capturing dynamic-update state bit for bit;
* **partition files** (``partition.bin``) -- a sharded entry's
  node-to-shard assignment array.

Every reader validates counts and cross-field consistency (offset table
length, final offset vs payload bit length, payload byte length) on top of
the container's magic/length/CRC checks, and raises
:class:`~repro.store.format.StoreFormatError` rather than constructing a
corrupt graph.
"""

from __future__ import annotations

import io
import zlib
from pathlib import Path

import numpy as np

from repro.compression.bitarray import PackedBits
from repro.compression.cgr import CGRConfig, CGRGraph
from repro.dynamic.compaction import CompactionPolicy
from repro.dynamic.overlay import DeltaOverlay

from repro.store.format import (
    MAGIC_DELTA,
    MAGIC_GRAPH,
    MAGIC_PARTITION,
    BlockReader,
    StoreFormatError,
    write_block,
    write_header,
    write_json_block,
)
from repro.store.io import publish_bytes


def _word_byte_length(bit_length: int) -> int:
    """Bytes a payload of ``bit_length`` bits occupies as whole 64-bit words."""
    return ((bit_length + 63) // 64) * 8


def _require(condition: bool, path: Path, message: str) -> None:
    """Raise :class:`StoreFormatError` with file context unless ``condition``."""
    if not condition:
        raise StoreFormatError(f"{path}: {message}")


# ---------------------------------------------------------------------------
# Graph files
# ---------------------------------------------------------------------------

def write_graph_file(path: str | Path, cgr: CGRGraph) -> Path:
    """Persist a frozen CGR encode (see ``docs/FORMAT.md`` for the layout).

    The packed word payload and the offset table are written verbatim, so a
    later :func:`read_graph_file` reconstructs a graph whose bit stream,
    offsets and configuration are identical to ``cgr``'s.
    """
    path = Path(path)
    bits = cgr.bits
    if not isinstance(bits, PackedBits):
        raise TypeError(
            "write_graph_file needs a frozen CGRGraph backed by PackedBits; "
            f"got a bit container of type {type(bits).__name__}"
        )
    offsets_bytes = np.asarray(cgr.offsets, dtype="<i8").tobytes()
    payload_bytes = bits.to_word_bytes()
    meta = {
        "kind": "graph",
        "num_nodes": cgr.num_nodes,
        "num_edges": cgr.num_edges,
        "bit_length": len(bits),
        "config": cgr.config.to_dict(),
        # Content fingerprints, duplicated from the block framing CRCs into
        # the metadata so identity can be checked from the meta block alone
        # (the snapshot writer's cheap is-this-the-same-encode probe).
        "offsets_crc32": zlib.crc32(offsets_bytes) & 0xFFFFFFFF,
        "payload_crc32": zlib.crc32(payload_bytes) & 0xFFFFFFFF,
    }
    buffer = io.BytesIO()
    write_header(buffer, MAGIC_GRAPH)
    write_json_block(buffer, meta)
    write_block(buffer, offsets_bytes)
    write_block(buffer, payload_bytes)
    # Published atomically (temp write + fsync + rename, see
    # repro.store.io): a crash mid-write can never leave a torn graph file
    # under the final name.
    return publish_bytes(path, buffer.getvalue())


def graph_fingerprint(cgr: CGRGraph) -> dict:
    """The identity fields :func:`write_graph_file` embeds in the metadata.

    Two encodes match on this fingerprint if and only if their files would
    be byte-identical (counts, configuration, offset table and payload
    content), which is what the snapshot writer's immutable-base reuse
    check compares against :func:`read_graph_meta` output.
    """
    return {
        "num_nodes": cgr.num_nodes,
        "num_edges": cgr.num_edges,
        "bit_length": len(cgr.bits),
        "config": cgr.config.to_dict(),
        "offsets_crc32": zlib.crc32(
            np.asarray(cgr.offsets, dtype="<i8").tobytes()
        ) & 0xFFFFFFFF,
        "payload_crc32": zlib.crc32(cgr.bits.to_word_bytes()) & 0xFFFFFFFF,
    }


def read_graph_meta(path: str | Path) -> dict:
    """The metadata block of a graph file (counts, bit length, config dict).

    Reads and verifies only the header and the metadata block -- the offset
    and payload blocks are not touched -- so it is cheap enough for the
    snapshot writer to cross-check an existing base file before reusing it.
    """
    path = Path(path)
    with path.open("rb") as handle:
        data = handle.read(4096)
        reader = BlockReader(data, str(path))
        try:
            reader.read_header(MAGIC_GRAPH)
            return reader.read_json_block("metadata")
        except StoreFormatError:
            if len(data) < 4096:
                raise
        # The metadata block straddled the probe window; read the whole file.
        reader = BlockReader(data + handle.read(), str(path))
    reader.read_header(MAGIC_GRAPH)
    return reader.read_json_block("metadata")


def read_graph_file(path: str | Path) -> CGRGraph:
    """Load a graph file back into a :class:`~repro.compression.cgr.CGRGraph`.

    This is the zero-copy cold-start path: the payload block is wrapped by
    :meth:`~repro.compression.bitarray.PackedBits.from_buffer` (one bulk
    word conversion, no per-bit or per-code work) and the offset table is
    viewed through ``numpy.frombuffer``; nothing is re-encoded and
    :func:`~repro.compression.cgr.encode_call_count` does not move.
    """
    path = Path(path)
    reader = BlockReader(path.read_bytes(), str(path))
    reader.read_header(MAGIC_GRAPH)
    meta = reader.read_json_block("metadata")
    _require(meta.get("kind") == "graph", path,
             f"metadata kind {meta.get('kind')!r} is not 'graph'")
    try:
        num_nodes = int(meta["num_nodes"])
        num_edges = int(meta["num_edges"])
        bit_length = int(meta["bit_length"])
        config = CGRConfig.from_dict(meta["config"])
        offsets_crc = int(meta["offsets_crc32"])
        payload_crc = int(meta["payload_crc32"])
    except (KeyError, TypeError, ValueError) as error:
        raise StoreFormatError(f"{path}: malformed metadata: {error!r}") from None
    _require(
        num_nodes >= 0 and num_edges >= 0 and bit_length >= 0, path,
        f"metadata counts must be non-negative (num_nodes={num_nodes}, "
        f"num_edges={num_edges}, bit_length={bit_length})",
    )

    offsets_block = reader.read_block("offset table")
    expected = (num_nodes + 1) * 8
    _require(
        offsets_block.nbytes == expected, path,
        f"offset table holds {offsets_block.nbytes} bytes, expected "
        f"{expected} for {num_nodes + 1} int64 entries",
    )
    # Copied out of the file image: a frombuffer view would pin the whole
    # file's bytes (payload included) for the lifetime of the graph.
    offsets = np.frombuffer(offsets_block, dtype="<i8").copy()
    _require(
        int(offsets[-1]) == bit_length, path,
        f"final offset {int(offsets[-1])} does not equal the declared "
        f"payload bit length {bit_length}",
    )
    # First offset 0 and non-decreasing entries, with the final-offset check
    # above, pin every bitStart inside the payload -- an interior offset
    # pointing past the stream must fail here, not EOFError at query time.
    _require(
        int(offsets[0]) == 0 and bool(np.all(np.diff(offsets) >= 0)), path,
        "offset table must start at 0 and be non-decreasing",
    )

    payload = reader.read_block("payload")
    _require(
        payload.nbytes == _word_byte_length(bit_length), path,
        f"payload holds {payload.nbytes} bytes, expected "
        f"{_word_byte_length(bit_length)} for {bit_length} bits",
    )
    reader.expect_end()
    # The metadata duplicates the section CRCs as content fingerprints; a
    # disagreement means the meta block and the data blocks come from
    # different writes (e.g. a spliced or hand-edited file).
    _require(
        zlib.crc32(offsets_block) & 0xFFFFFFFF == offsets_crc, path,
        "metadata offsets_crc32 does not match the offset table",
    )
    _require(
        zlib.crc32(payload) & 0xFFFFFFFF == payload_crc, path,
        "metadata payload_crc32 does not match the payload",
    )
    return CGRGraph(
        num_nodes=num_nodes,
        num_edges=num_edges,
        bits=PackedBits.from_buffer(payload, bit_length),
        offsets=offsets,
        config=config,
    )


# ---------------------------------------------------------------------------
# Delta files
# ---------------------------------------------------------------------------

def write_delta_file(path: str | Path, overlay: DeltaOverlay) -> Path:
    """Persist one overlay's dynamic state (structure + side stream)."""
    path = Path(path)
    state = overlay.state_dict()
    meta = {"kind": "delta", "state": state}
    buffer = io.BytesIO()
    write_header(buffer, MAGIC_DELTA)
    write_json_block(buffer, meta)
    write_block(buffer, overlay.side_stream.to_word_bytes())
    return publish_bytes(path, buffer.getvalue())


def read_delta_file(
    path: str | Path,
    base: CGRGraph,
    policy: CompactionPolicy | None = None,
) -> DeltaOverlay:
    """Rebuild a :class:`~repro.dynamic.DeltaOverlay` over ``base``.

    ``base`` must be the very graph the snapshotted overlay wrapped (the
    matching graph file's load) -- the restored extents and insert runs
    hold absolute offsets into the spliced base+side stream.
    """
    path = Path(path)
    reader = BlockReader(path.read_bytes(), str(path))
    reader.read_header(MAGIC_DELTA)
    meta = reader.read_json_block("metadata")
    _require(meta.get("kind") == "delta", path,
             f"metadata kind {meta.get('kind')!r} is not 'delta'")
    try:
        state = meta["state"]
        side_bits = int(state["side_bit_length"])
    except (KeyError, TypeError, ValueError) as error:
        raise StoreFormatError(f"{path}: malformed metadata: {error!r}") from None
    _require(side_bits >= 0, path,
             f"side_bit_length must be non-negative, got {side_bits}")
    payload = reader.read_block("side stream")
    _require(
        payload.nbytes == _word_byte_length(side_bits), path,
        f"side stream holds {payload.nbytes} bytes, expected "
        f"{_word_byte_length(side_bits)} for {side_bits} bits",
    )
    reader.expect_end()
    side = PackedBits.from_buffer(payload, side_bits)
    try:
        return DeltaOverlay.from_state(base, state, side, policy=policy)
    except (KeyError, TypeError, ValueError) as error:
        raise StoreFormatError(
            f"{path}: malformed overlay state: {error}"
        ) from None


# ---------------------------------------------------------------------------
# Partition files
# ---------------------------------------------------------------------------

def write_partition_file(
    path: str | Path, assignment: np.ndarray, num_shards: int
) -> Path:
    """Persist a sharded entry's node-to-shard assignment array."""
    path = Path(path)
    assignment = np.asarray(assignment, dtype="<i8")
    meta = {
        "kind": "partition",
        "num_shards": int(num_shards),
        "num_nodes": int(len(assignment)),
    }
    buffer = io.BytesIO()
    write_header(buffer, MAGIC_PARTITION)
    write_json_block(buffer, meta)
    write_block(buffer, assignment.tobytes())
    return publish_bytes(path, buffer.getvalue())


def read_partition_file(path: str | Path) -> tuple[np.ndarray, int]:
    """Load ``(assignment, num_shards)`` from a partition file."""
    path = Path(path)
    reader = BlockReader(path.read_bytes(), str(path))
    reader.read_header(MAGIC_PARTITION)
    meta = reader.read_json_block("metadata")
    _require(meta.get("kind") == "partition", path,
             f"metadata kind {meta.get('kind')!r} is not 'partition'")
    try:
        num_shards = int(meta["num_shards"])
        num_nodes = int(meta["num_nodes"])
    except (KeyError, TypeError, ValueError) as error:
        raise StoreFormatError(f"{path}: malformed metadata: {error!r}") from None
    _require(num_shards > 0 and num_nodes >= 0, path,
             f"invalid counts (num_shards={num_shards}, num_nodes={num_nodes})")
    block = reader.read_block("assignment")
    _require(
        block.nbytes == num_nodes * 8, path,
        f"assignment holds {block.nbytes} bytes, expected {num_nodes * 8}",
    )
    reader.expect_end()
    assignment = np.frombuffer(block, dtype="<i8").copy()
    _require(
        len(assignment) == 0
        or (int(assignment.min()) >= 0 and int(assignment.max()) < num_shards),
        path,
        f"assignment values must lie in [0, {num_shards})",
    )
    return assignment, num_shards


__all__ = [
    "graph_fingerprint",
    "read_delta_file",
    "read_graph_file",
    "read_graph_meta",
    "read_partition_file",
    "write_delta_file",
    "write_graph_file",
    "write_partition_file",
]
