"""Persistent CGR store: binary graph files, zero-copy load, epoch snapshots.

The paper's premise is that the compressed representation *is* the
operational artifact -- so this package makes it storable and reloadable
as-is.  Before it, every process rebuilt graphs from edge lists and paid the
full CGR encode on every restart, and dynamic-overlay state simply died with
the process.  Three layers fix that:

* :mod:`repro.store.format` -- the framed binary container every store file
  shares: an 8-byte magic, a version word, and length/CRC-framed blocks, so
  truncation, corruption and foreign files are all detected before any
  payload is interpreted;
* :mod:`repro.store.files` -- the concrete file kinds: **graph files**
  (metadata + ``bitStart[]`` offset table + the packed 64-bit word payload
  written verbatim, loaded back by wrapping the words -- no re-encode, which
  is why cold-start load is orders of magnitude faster than re-encoding,
  gated >=10x by ``benchmarks/test_store_throughput.py``), **delta files**
  (one :class:`~repro.dynamic.DeltaOverlay`'s structural state plus its side
  stream, bit for bit) and **partition files** (a sharded entry's
  node-to-shard assignment);
* :mod:`repro.store.snapshot` -- Iceberg-style epoch snapshots: immutable
  base files shared across epochs, a cheap delta file per epoch, and JSON
  manifests naming each snapshot's files, with ``manifest.json`` always
  pointing at the latest epoch.

The byte-level layout is specified in ``docs/FORMAT.md`` precisely enough to
reimplement a reader from the document alone.  Service-level entry points:
:meth:`repro.service.TraversalService.save_graph` /
:meth:`~repro.service.TraversalService.load_graph` (and the registry's
``snapshot``/``restore`` they delegate to)::

    from repro import BFSQuery, TraversalService, load_dataset

    service = TraversalService()
    service.register_graph("uk", load_dataset("uk-2002", scale=2000))
    service.apply_updates("uk", [("insert", 0, 999)])
    service.save_graph("uk", "snapshots/uk")

    restarted = TraversalService()          # a fresh process
    restarted.load_graph("snapshots/uk")    # no re-encode
    restarted.submit([BFSQuery("uk", source=0)])
"""

from repro.store.files import (
    graph_fingerprint,
    read_delta_file,
    read_graph_file,
    read_graph_meta,
    read_partition_file,
    write_delta_file,
    write_graph_file,
    write_partition_file,
)
from repro.store.format import (
    FORMAT_VERSION,
    StoreError,
    StoreFormatError,
    StoreTruncationError,
    StoreVersionError,
)
from repro.store.snapshot import (
    MANIFEST_VERSION,
    read_manifest,
    resolve_manifest_path,
    restore_entry,
    write_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "graph_fingerprint",
    "MANIFEST_VERSION",
    "StoreError",
    "StoreFormatError",
    "StoreTruncationError",
    "StoreVersionError",
    "read_delta_file",
    "read_graph_file",
    "read_graph_meta",
    "read_manifest",
    "read_partition_file",
    "resolve_manifest_path",
    "restore_entry",
    "write_delta_file",
    "write_graph_file",
    "write_partition_file",
    "write_snapshot",
]
